"""Tests for the two-party communication substrate."""

import random

import pytest

np = pytest.importorskip("numpy")  # whole module is linear-algebra-bound

from repro.comm.classical import (
    DeterministicDisjointnessProtocol,
    DeterministicIPmod3Protocol,
    HammingDistanceThresholdProtocol,
    RandomizedEqualityProtocol,
    SendAllProtocol,
)
from repro.comm.lower_bounds import (
    discrepancy,
    discrepancy_communication_bound,
    fooling_set_bound,
    greedy_fooling_set,
    is_fooling_set,
    log_rank_bound,
    spectral_discrepancy_bound,
)
from repro.comm.problems import (
    GapEquality,
    all_inputs,
    disjointness,
    equality,
    hamiltonian_matching_problem,
    inner_product_mod2,
    ipmod3,
    ipmod3_promise_inputs,
    is_perfect_matching,
)
from repro.comm.quantum_protocols import (
    GroverDisjointnessProtocol,
    QuantumFingerprintEqualityProtocol,
)


class TestProblems:
    def test_equality_evaluate(self):
        eq = equality(4)
        assert eq.evaluate((1, 0, 1, 0), (1, 0, 1, 0)) == 1
        assert eq.evaluate((1, 0, 1, 0), (1, 0, 1, 1)) == 0

    def test_disjointness_evaluate(self):
        disj = disjointness(4)
        assert disj.evaluate((1, 0, 1, 0), (0, 1, 0, 1)) == 1
        assert disj.evaluate((1, 0, 1, 0), (1, 0, 0, 0)) == 0

    def test_ipmod3_evaluate(self):
        f = ipmod3(6)
        assert f.evaluate((1, 1, 1, 0, 0, 0), (1, 1, 1, 0, 0, 0)) == 1  # 3 mod 3 = 0
        assert f.evaluate((1, 1, 0, 0, 0, 0), (1, 1, 0, 0, 0, 0)) == 0  # 2 mod 3

    def test_samplers_respect_labels(self):
        rng = random.Random(0)
        for problem in (equality(8), disjointness(8), ipmod3(8)):
            if problem.sample_one_input:
                x, y = problem.sample_one_input(rng)
                assert problem.evaluate(x, y) == 1
            if problem.sample_zero_input:
                x, y = problem.sample_zero_input(rng)
                assert problem.evaluate(x, y) == 0

    def test_sign_matrix(self):
        eq = equality(2)
        inputs = all_inputs(2)
        matrix = eq.matrix(inputs, inputs)
        assert np.allclose(np.diag(matrix), -1.0)  # equal -> f=1 -> (-1)^1
        assert matrix[0, 1] == 1.0

    def test_gap_equality_promise(self):
        gap = GapEquality(8, 2)
        rng = random.Random(1)
        x, y = gap.sample_zero_input(rng)
        assert gap.in_promise(x, y)
        assert gap.evaluate(x, y) == 0
        x, y = gap.sample_one_input(rng)
        assert gap.evaluate(x, y) == 1
        with pytest.raises(ValueError):
            gap.evaluate((0,) * 8, (1,) + (0,) * 7)  # distance 1 violates promise

    def test_promise_inputs_structure(self):
        xs, ys = ipmod3_promise_inputs(8)
        assert len(xs) == 16 and len(ys) == 16
        f = ipmod3(8)
        # On the promise, each block contributes 0/1, so evaluation works.
        assert f.evaluate(xs[0], ys[0]) in (0, 1)

    def test_hamiltonian_matching_problem(self):
        ham = hamiltonian_matching_problem(6)
        carol = [(0, 1), (2, 3), (4, 5)]
        david_ham = [(1, 2), (3, 4), (5, 0)]
        david_split = [(1, 0), (2, 3), (4, 5)]
        assert ham.evaluate(carol, david_ham) == 1
        assert ham.evaluate(carol, david_split) == 0
        assert is_perfect_matching(6, carol)
        with pytest.raises(ValueError):
            ham.evaluate([(0, 1)], david_ham)


class TestClassicalProtocols:
    def test_send_all_correct(self):
        disj = disjointness(8)
        proto = DeterministicDisjointnessProtocol()
        assert proto.error_rate(disj, trials=60, seed=0) == 0.0

    def test_send_all_cost(self):
        proto = SendAllProtocol(lambda x, y: 1)
        result = proto.run((0,) * 16, (0,) * 16)
        assert result.alice_bits == 16
        assert result.bob_bits == 1

    def test_randomized_equality_one_sided(self):
        eq = equality(16)
        proto = RandomizedEqualityProtocol(repetitions=12)
        rng = random.Random(0)
        for _ in range(30):
            x, y = eq.sample_one_input(rng)
            assert proto.run(x, y, seed=rng.randrange(2**31)).output == 1

    def test_randomized_equality_low_error(self):
        eq = equality(16)
        proto = RandomizedEqualityProtocol(repetitions=12)
        assert proto.error_rate(eq, trials=150, seed=1) <= 0.02

    def test_randomized_equality_cost_constant_in_n(self):
        proto = RandomizedEqualityProtocol(repetitions=10)
        r1 = proto.run((0,) * 16, (0,) * 16)
        r2 = proto.run((0,) * 64, (0,) * 64)
        assert r1.total_bits == r2.total_bits == 11

    def test_ipmod3_protocol(self):
        f = ipmod3(8)
        assert DeterministicIPmod3Protocol().error_rate(f, trials=60) == 0.0

    def test_gap_equality_protocol(self):
        gap = GapEquality(8, 2)
        proto = HammingDistanceThresholdProtocol()
        rng = random.Random(3)
        for _ in range(20):
            x, y = gap.sample_input(rng)
            assert proto.run(x, y).output == gap.evaluate(x, y)


class TestQuantumProtocols:
    def test_fingerprint_equality_correct(self):
        eq = equality(16)
        proto = QuantumFingerprintEqualityProtocol(16, repetitions=12, seed=0)
        assert proto.error_rate(eq, trials=80, seed=2) <= 0.05

    def test_fingerprint_cost_logarithmic(self):
        proto16 = QuantumFingerprintEqualityProtocol(16, repetitions=5, seed=0)
        proto256 = QuantumFingerprintEqualityProtocol(256, repetitions=5, seed=0)
        r16 = proto16.run((0,) * 16, (0,) * 16)
        r256 = proto256.run((0,) * 256, (0,) * 256)
        # O(log n) qubits: growing n 16x should grow cost by ~ log factor only.
        assert r256.total_qubits <= r16.total_qubits + 5 * 6

    def test_grover_disjointness_correct(self):
        disj = disjointness(16)
        proto = GroverDisjointnessProtocol()
        assert proto.error_rate(disj, trials=40, seed=3) <= 0.15

    def test_grover_disjointness_sublinear(self):
        proto = GroverDisjointnessProtocol()
        n = 64
        x = tuple([1] + [0] * (n - 1))
        y = tuple([1] + [0] * (n - 1))
        result = proto.run(x, y, seed=5)
        assert result.output == 0
        assert result.total_qubits <= 6 * proto.expected_communication(n)


class TestLowerBounds:
    def test_equality_fooling_set(self):
        eq = equality(4)
        pairs = [(x, x) for x in all_inputs(4)]
        assert is_fooling_set(eq.evaluate, pairs)
        assert fooling_set_bound(len(pairs)) == 4.0

    def test_greedy_fooling_set(self):
        eq = equality(3)
        candidates = [(x, y) for x in all_inputs(3) for y in all_inputs(3)]
        fs = greedy_fooling_set(eq.evaluate, candidates)
        assert len(fs) == 8  # the full diagonal
        assert is_fooling_set(eq.evaluate, fs)

    def test_non_fooling_set_rejected(self):
        disj = disjointness(2)
        pairs = [((0, 0), (0, 0)), ((0, 1), (0, 0))]  # cross pairs still 1
        assert not is_fooling_set(disj.evaluate, pairs)

    def test_log_rank_equality_is_n(self):
        eq = equality(3)
        inputs = all_inputs(3)
        assert log_rank_bound(eq.boolean_matrix(inputs, inputs)) == 3.0

    def test_ip_discrepancy_small(self):
        ip = inner_product_mod2(3)
        inputs = all_inputs(3)
        matrix = ip.matrix(inputs, inputs)
        exact = discrepancy(matrix)
        spectral = spectral_discrepancy_bound(matrix)
        assert exact <= spectral + 1e-9
        # IP has discrepancy 2^{-Theta(n)} -> communication Omega(n).
        assert discrepancy_communication_bound(exact) >= 1.0

    def test_discrepancy_size_guard(self):
        with pytest.raises(ValueError):
            discrepancy(np.ones((20, 20)))
