"""Tests for the shared-entanglement resource layer (Appendix A.1)."""

import random

import pytest

np = pytest.importorskip("numpy")  # whole module is linear-algebra-bound

from repro.quantum.network_resources import (
    EntanglementRegistry,
    qubits_to_classical_bits,
    teleport_over_edge,
)
from repro.quantum.state import QuantumState


def random_qubit(seed: int) -> QuantumState:
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(2) + 1j * rng.standard_normal(2)
    return QuantumState(1, vec / np.linalg.norm(vec))


class TestRegistry:
    def test_dispense_and_consume(self):
        registry = EntanglementRegistry()
        registry.dispense("a", "b", 3)
        assert registry.available("a", "b") == 3
        assert registry.available("b", "a") == 3  # symmetric
        registry.consume("a", "b", 2)
        assert registry.available("a", "b") == 1
        assert registry.total_consumed == 2

    def test_overconsumption_rejected(self):
        registry = EntanglementRegistry()
        registry.dispense("a", "b", 1)
        registry.consume("a", "b")
        with pytest.raises(RuntimeError):
            registry.consume("a", "b")

    def test_self_entanglement_rejected(self):
        with pytest.raises(ValueError):
            EntanglementRegistry().dispense("a", "a")

    def test_zero_dispense_rejected(self):
        with pytest.raises(ValueError):
            EntanglementRegistry().dispense("a", "b", 0)


class TestTeleportOverEdge:
    def test_exact_transfer_and_accounting(self):
        registry = EntanglementRegistry()
        registry.dispense("u", "v", 5)
        rng = random.Random(0)
        for seed in range(5):
            qubit = random_qubit(seed)
            outcome = teleport_over_edge(registry, "u", "v", qubit.copy(), rng=rng)
            assert outcome.state.fidelity(qubit) == pytest.approx(1.0)
            assert outcome.classical_cost == 2
        assert registry.available("u", "v") == 0
        assert registry.total_consumed == 5

    def test_requires_entanglement(self):
        registry = EntanglementRegistry()
        with pytest.raises(RuntimeError):
            teleport_over_edge(registry, "u", "v", random_qubit(1))

    def test_exchange_rate(self):
        # The Lemma 3.2 / Theorem 3.5 conversion: T qubits = 2T bits + T pairs.
        assert qubits_to_classical_bits(7) == 14
        with pytest.raises(ValueError):
            qubits_to_classical_bits(-1)
