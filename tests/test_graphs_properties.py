"""Unit tests for the Appendix A.2 verification predicates."""

import networkx as nx
import pytest

from repro.graphs import properties as props


@pytest.fixture
def cycle6():
    return nx.cycle_graph(6)


@pytest.fixture
def complete5():
    return nx.complete_graph(5)


class TestHamiltonianCycle:
    def test_cycle_is_hamiltonian(self, cycle6):
        assert props.is_hamiltonian_cycle(cycle6, cycle6.edges())

    def test_path_is_not(self, cycle6):
        edges = list(cycle6.edges())[:-1]
        assert not props.is_hamiltonian_cycle(cycle6, edges)

    def test_two_triangles_are_not(self, complete5):
        graph = nx.complete_graph(6)
        m = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        assert not props.is_hamiltonian_cycle(graph, m)

    def test_hamiltonian_in_complete_graph(self, complete5):
        m = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        assert props.is_hamiltonian_cycle(complete5, m)

    def test_rejects_non_network_edge(self, cycle6):
        with pytest.raises(ValueError):
            props.subgraph_from_edges(cycle6, [(0, 3)])


class TestSpanningTree:
    def test_star_is_spanning_tree(self, complete5):
        m = [(0, i) for i in range(1, 5)]
        assert props.is_spanning_tree(complete5, m)

    def test_cycle_is_not(self, cycle6):
        assert not props.is_spanning_tree(cycle6, cycle6.edges())

    def test_disconnected_forest_is_not(self, complete5):
        assert not props.is_spanning_tree(complete5, [(0, 1), (2, 3)])

    def test_hamiltonian_minus_edge_is_spanning_tree(self, cycle6):
        # The Theorem 3.6 reduction's core fact.
        edges = list(cycle6.edges())[:-1]
        assert props.is_spanning_tree(cycle6, edges)


class TestConnectivityFamily:
    def test_connected(self, complete5):
        assert props.is_subgraph_connected(complete5, [(0, 1), (1, 2), (2, 3), (3, 4)])

    def test_disconnected(self, complete5):
        assert not props.is_subgraph_connected(complete5, [(0, 1), (2, 3)])

    def test_spanning_connected_needs_coverage(self, complete5):
        m = [(0, 1), (1, 2), (2, 3)]  # node 4 isolated
        assert not props.is_connected_spanning_subgraph(complete5, m)
        m.append((3, 4))
        assert props.is_connected_spanning_subgraph(complete5, m)

    def test_st_connected(self, complete5):
        m = [(0, 1), (1, 2)]
        assert props.st_connected(complete5, m, 0, 2)
        assert not props.st_connected(complete5, m, 0, 4)


class TestCycleChecks:
    def test_tree_has_no_cycle(self, complete5):
        assert not props.contains_cycle(complete5, [(0, 1), (1, 2), (2, 3)])

    def test_triangle_has_cycle(self, complete5):
        assert props.contains_cycle(complete5, [(0, 1), (1, 2), (2, 0)])

    def test_cycle_through_edge(self, complete5):
        m = [(0, 1), (1, 2), (2, 0), (3, 4)]
        assert props.contains_cycle_through_edge(complete5, m, (0, 1))
        assert not props.contains_cycle_through_edge(complete5, m, (3, 4))

    def test_cycle_through_absent_edge(self, complete5):
        m = [(0, 1), (1, 2), (2, 0)]
        assert not props.contains_cycle_through_edge(complete5, m, (3, 4))


class TestBipartiteAndCuts:
    def test_even_cycle_bipartite(self, cycle6):
        assert props.is_bipartite_subgraph(cycle6, cycle6.edges())

    def test_odd_cycle_not_bipartite(self):
        graph = nx.cycle_graph(5)
        assert not props.is_bipartite_subgraph(graph, graph.edges())

    def test_cut(self):
        graph = nx.path_graph(4)
        assert props.is_cut(graph, [(1, 2)])
        assert not props.is_cut(nx.complete_graph(4), [(1, 2)])

    def test_st_cut(self):
        graph = nx.path_graph(4)
        assert props.is_st_cut(graph, [(1, 2)], 0, 3)
        assert not props.is_st_cut(graph, [(0, 1)], 2, 3)

    def test_edge_on_all_paths(self):
        graph = nx.path_graph(4)
        m = list(graph.edges())
        assert props.edge_on_all_paths(graph, m, 0, 3, (1, 2))
        diamond = nx.cycle_graph(4)
        assert not props.edge_on_all_paths(diamond, diamond.edges(), 0, 2, (0, 1))


class TestSimplePath:
    def test_path_accepted(self, complete5):
        assert props.is_simple_path(complete5, [(0, 1), (1, 2), (2, 3)])

    def test_cycle_rejected(self, cycle6):
        assert not props.is_simple_path(cycle6, cycle6.edges())

    def test_two_paths_rejected(self):
        graph = nx.complete_graph(6)
        assert not props.is_simple_path(graph, [(0, 1), (2, 3), (3, 4)])

    def test_high_degree_rejected(self, complete5):
        assert not props.is_simple_path(complete5, [(0, 1), (0, 2), (0, 3)])


class TestLeastElementList:
    def test_le_list_on_path(self):
        graph = nx.path_graph(4)
        nx.set_edge_attributes(graph, 1.0, "weight")
        ranks = {0: 3, 1: 2, 2: 1, 3: 0}
        le = props.least_element_list(graph, ranks, 0)
        # 0 itself, then 1 (rank 2 < 3), then 2, then 3.
        assert le == [(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)]

    def test_le_list_skips_dominated(self):
        graph = nx.path_graph(4)
        nx.set_edge_attributes(graph, 1.0, "weight")
        ranks = {0: 1, 1: 2, 2: 3, 3: 0}
        le = props.least_element_list(graph, ranks, 0)
        assert le == [(0, 0.0), (3, 3.0)]

    def test_verify(self):
        graph = nx.path_graph(4)
        nx.set_edge_attributes(graph, 1.0, "weight")
        ranks = {0: 1, 1: 2, 2: 3, 3: 0}
        good = props.least_element_list(graph, ranks, 0)
        assert props.verify_least_element_list(graph, ranks, 0, good)
        assert not props.verify_least_element_list(graph, ranks, 0, good[:-1])
