"""Tests for the gamma_2 machinery, approximate degree LP and fooling sets."""

import math

import pytest

np = pytest.importorskip("numpy")  # whole module is linear-algebra-bound
from scipy.linalg import hadamard

from repro.comm.problems import all_inputs, equality, inner_product_mod2
from repro.core.approx_degree import (
    approx_degree,
    best_approximation_error,
    dual_polynomial,
    majority_function,
    mod3_function,
    or_function,
    parity_function,
)
from repro.core.fooling import (
    code_min_distance,
    gap_equality_fooling_set,
    gap_equality_lower_bound,
    gilbert_varshamov_size_bound,
    greedy_gv_code,
    kdw_server_model_bound,
    kdw_two_party_bound,
)
from repro.core.gamma2 import (
    approx_gamma2_lower,
    approx_trace_norm_lower,
    gamma2_dual,
    gamma2_lower,
    gamma2_upper,
    is_strongly_balanced,
    server_model_lower_bound_from_gamma2,
    spectral_norm,
    trace_norm,
)


class TestGamma2:
    def test_identity(self):
        eye = np.eye(4)
        assert gamma2_lower(eye) == pytest.approx(1.0)
        assert gamma2_upper(eye) == pytest.approx(1.0, abs=1e-6)

    def test_all_ones(self):
        ones = np.ones((4, 4))
        assert gamma2_lower(ones) == pytest.approx(1.0)
        assert gamma2_upper(ones) <= 1.0 + 1e-6

    def test_hadamard_sqrt_n(self):
        # gamma_2(H_n) = sqrt(n): lower and upper bounds must meet.
        h = hadamard(4).astype(float)
        assert gamma2_lower(h) == pytest.approx(2.0)
        assert gamma2_upper(h) == pytest.approx(2.0, abs=0.05)

    def test_upper_at_least_lower(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            a = rng.standard_normal((4, 5))
            assert gamma2_upper(a) >= gamma2_lower(a) - 1e-9

    def test_dual_norm_duality_on_hadamard(self):
        # gamma_2^*(K) >= <K, K> / gamma_2(K): sanity via Cauchy-Schwarz-ish.
        h = hadamard(4).astype(float) / 16.0
        dual = gamma2_dual(h, seed=0)
        assert dual > 0

    def test_trace_and_spectral(self):
        h = hadamard(4).astype(float)
        assert trace_norm(h) == pytest.approx(8.0)
        assert spectral_norm(h) == pytest.approx(2.0)

    def test_witness_bound(self):
        eq = equality(3)
        inputs = all_inputs(3)
        a = eq.matrix(inputs, inputs)
        witness = a / np.abs(a).sum()  # normalised copy: <A, W> = 1-ish
        lower = approx_trace_norm_lower(a, 0.0, witness)
        assert lower <= trace_norm(a) + 1e-9
        assert approx_gamma2_lower(a, 0.0, witness) <= gamma2_lower(a) + 1e-9

    def test_lemma_b2_direction(self):
        # 4^{2Q} >= gamma2 => Q >= log4(gamma2).
        assert server_model_lower_bound_from_gamma2(16.0) == pytest.approx(2.0)
        assert server_model_lower_bound_from_gamma2(0.5) == 0.0

    def test_strongly_balanced_detector(self):
        ag = np.array(
            [
                [-1, -1, 1, 1],
                [-1, 1, 1, -1],
                [1, 1, -1, -1],
                [1, -1, -1, 1],
            ],
            dtype=float,
        )
        assert is_strongly_balanced(ag)
        assert not is_strongly_balanced(np.ones((2, 2)))

    def test_appendix_b3_inner_matrix(self):
        # The matrix A_g of Appendix B.3 has spectral norm 2 sqrt(2), which
        # drives the log(sqrt(16)/||A_g||) = 1/2 factor in the IPmod3 bound.
        ag = np.array(
            [
                [-1, -1, 1, 1],
                [-1, 1, 1, -1],
                [1, 1, -1, -1],
                [1, -1, -1, 1],
            ],
            dtype=float,
        )
        assert spectral_norm(ag) == pytest.approx(2.0 * math.sqrt(2.0))
        assert math.log2(math.sqrt(16) / spectral_norm(ag)) == pytest.approx(0.5)


class TestApproxDegree:
    def test_parity_needs_full_degree(self):
        for n in (3, 5, 7):
            assert approx_degree(parity_function(n), eps=1 / 3) == n

    def test_or_grows_like_sqrt(self):
        degrees = {n: approx_degree(or_function(n), eps=1 / 3) for n in (4, 16, 36)}
        # Paturi: deg(OR_n) = Theta(sqrt(n)); quadrupling n ~ doubles degree.
        assert degrees[16] <= 2 * degrees[4] + 1
        assert degrees[36] <= 3 * degrees[4] + 1
        assert degrees[36] >= degrees[16] >= degrees[4] >= 1

    def test_mod3_linear(self):
        # Paturi: predicates flipping near the centre need degree Theta(n).
        for n in (6, 9, 12):
            assert approx_degree(mod3_function(n), eps=1 / 3) >= n / 2

    def test_majority(self):
        deg = approx_degree(majority_function(9), eps=1 / 3)
        assert 1 <= deg <= 9

    def test_error_decreases_with_degree(self):
        f = mod3_function(9)
        errors = [best_approximation_error(f, d) for d in range(10)]
        for a, b in zip(errors, errors[1:]):
            assert b <= a + 1e-9
        assert errors[9] <= 1e-7

    def test_dual_polynomial_certificate(self):
        f = mod3_function(8)
        d = approx_degree(f, eps=1 / 3)
        dual = dual_polynomial(f, d)
        assert dual.check(f)
        # Strong duality: correlation equals the best error at degree d - 1.
        assert dual.correlation == pytest.approx(
            best_approximation_error(f, d - 1), abs=1e-6
        )


class TestFooling:
    def test_greedy_code_distance(self):
        code = greedy_gv_code(10, 4)
        assert code_min_distance(code) >= 4
        assert len(code) >= gilbert_varshamov_size_bound(10, 4) / 4

    def test_fooling_set_from_code(self):
        from repro.comm.lower_bounds import is_fooling_set
        from repro.comm.problems import GapEquality

        code = greedy_gv_code(10, 5)
        gap = GapEquality(10, 4)  # promise: equal or distance > 4

        def evaluate(x, y):
            return int(tuple(x) == tuple(y))

        pairs = gap_equality_fooling_set(code)
        assert is_fooling_set(evaluate, pairs)
        for (x, _), (x2, _) in zip(pairs, pairs[1:]):
            assert gap.in_promise(x, x2)  # cross pairs satisfy the promise

    def test_kdw_bounds(self):
        assert kdw_two_party_bound(2**20) == pytest.approx(20 / 4 - 0.5)
        assert kdw_server_model_bound(2**20, eps=0.5) == pytest.approx((20 - 1) / 4)
        with pytest.raises(ValueError):
            kdw_two_party_bound(0)

    def test_theorem_6_1_scaling(self):
        # Q*_sv(Gap-Eq_n) = Omega(n): the bound grows linearly in n.
        bounds = [gap_equality_lower_bound(n)["server_model_lower_bound"] for n in (40, 80, 160)]
        assert bounds[1] >= 1.8 * bounds[0]
        assert bounds[2] >= 1.8 * bounds[1]

    def test_gv_rate_positive_below_quarter(self):
        result = gap_equality_lower_bound(64, beta=0.125)
        assert result["rate"] > 0
        assert result["server_model_lower_bound"] > 0
        with pytest.raises(ValueError):
            gap_equality_lower_bound(64, beta=0.3)
