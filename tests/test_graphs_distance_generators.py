"""Tests for the delta-far metric and the instance generators."""

import networkx as nx
import pytest

from repro.graphs import generators as gen
from repro.graphs.distance import (
    brute_force_delta_far,
    delta_far_from_connected,
    delta_far_from_hamiltonian,
    gap_hamiltonian_label,
    is_delta_far,
)
from repro.graphs.properties import is_hamiltonian_cycle, is_subgraph_connected
from repro.graphs.weights import aspect_ratio, assign_gap_weights, total_weight


class TestDeltaFar:
    def test_connected_distance_zero(self):
        graph = nx.complete_graph(5)
        m = [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert delta_far_from_connected(graph, m) == 0

    def test_components_minus_one(self):
        graph = nx.complete_graph(6)
        m = [(0, 1), (2, 3), (4, 5)]
        assert delta_far_from_connected(graph, m) == 2

    def test_hamiltonian_cycle_cover(self):
        graph = nx.complete_graph(6)
        cover = gen.disjoint_cycle_cover(6, 2, seed=1)
        assert delta_far_from_hamiltonian(graph, cover) == 2

    def test_single_cycle_distance_zero(self):
        graph = nx.complete_graph(6)
        cover = gen.disjoint_cycle_cover(6, 1, seed=1)
        assert delta_far_from_hamiltonian(graph, cover) == 0

    def test_closed_form_matches_brute_force_connectivity(self):
        graph = nx.complete_graph(5)
        m = [(0, 1), (2, 3)]
        brute = brute_force_delta_far(graph, m, is_subgraph_connected)
        assert brute == delta_far_from_connected(graph, m) == 2

    def test_is_delta_far(self):
        graph = nx.complete_graph(6)
        m = [(0, 1), (2, 3), (4, 5)]
        assert is_delta_far(graph, m, is_subgraph_connected, 2)
        assert not is_delta_far(graph, m, is_subgraph_connected, 3)

    def test_gap_label(self):
        graph = nx.complete_graph(8)
        one = gen.disjoint_cycle_cover(8, 1, seed=0)
        far = gen.disjoint_cycle_cover(8, 2, seed=0)
        assert gap_hamiltonian_label(graph, one, 2) is True
        assert gap_hamiltonian_label(graph, far, 2) is False


class TestGenerators:
    def test_random_connected(self):
        for seed in range(5):
            g = gen.random_connected_graph(20, seed=seed)
            assert nx.is_connected(g)
            assert g.number_of_nodes() == 20

    def test_weighted_aspect_ratio(self):
        g = gen.random_weighted_graph(15, aspect_ratio=50.0, seed=3)
        assert aspect_ratio(g) == pytest.approx(50.0)

    def test_cycle_cover_structure(self):
        g = gen.disjoint_cycle_cover(12, 3, seed=2)
        assert nx.number_connected_components(g) == 3
        assert all(d == 2 for _, d in g.degree())

    def test_cycle_cover_hamiltonian_case(self):
        g = gen.disjoint_cycle_cover(9, 1, seed=5)
        complete = nx.complete_graph(9)
        assert is_hamiltonian_cycle(complete, g.edges())

    def test_perfect_matching(self):
        m = gen.random_perfect_matching(10, seed=1)
        covered = {v for e in m for v in e}
        assert covered == set(range(10))
        assert len(m) == 5

    def test_matching_pair_cycle_count(self):
        for n_cycles in (1, 2, 3):
            carol, david = gen.matching_pair_for_cycles(16, n_cycles, seed=7)
            union = nx.Graph()
            union.add_edges_from(carol)
            union.add_edges_from(david)
            assert nx.number_connected_components(union) == n_cycles
            assert all(d == 2 for _, d in union.degree())

    def test_matching_pair_rejects_odd(self):
        with pytest.raises(ValueError):
            gen.matching_pair_for_cycles(10, 3)


class TestWeights:
    def test_total_weight(self):
        g = nx.path_graph(4)
        nx.set_edge_attributes(g, 2.0, "weight")
        assert total_weight(g, g.edges()) == pytest.approx(6.0)

    def test_gap_weights(self):
        g = nx.complete_graph(4)
        marked = [(0, 1), (1, 2)]
        assign_gap_weights(g, marked, low=1.0, high=10.0)
        assert g.edges[0, 1]["weight"] == 1.0
        assert g.edges[0, 3]["weight"] == 10.0
        assert aspect_ratio(g) == pytest.approx(10.0)

    def test_aspect_ratio_requires_positive(self):
        g = nx.path_graph(3)
        nx.set_edge_attributes(g, 0.0, "weight")
        with pytest.raises(ValueError):
            aspect_ratio(g)
