"""The HTML report subsystem: SVG kit, report model, site builder, CLI."""

import json
import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import ParamSpec, PlotSpec, ResultStore, scenario
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import get_scenario
from repro.experiments.reporting import (
    build_reports,
    build_site,
    extract_speedups,
    page_name,
    plot_series,
    render_bar_chart,
    render_plot,
    render_scenario_page,
)
from repro.experiments.reporting.svg import Series, linear_ticks, log_ticks
from repro.experiments.store import ResultRecord


@scenario("test-rep-plot", params=[ParamSpec("x", int, 1), ParamSpec("kind", str, "a")])
def _rep_plot(*, seed, x, kind):
    """Synthetic scenario for report-model tests."""
    return {"y": float(x)}


def _record(scenario_name, key, params, result, *, seed=7, status="ok", error=None):
    return ResultRecord(
        key=key,
        scenario=scenario_name,
        params=params,
        seed=seed,
        replicate=0,
        status=status,
        result=result,
        error=error,
        duration_s=0.25,
    )


def _fig3_store(root) -> ResultStore:
    """A fixed store with fig3 + engine-speedup + an unregistered scenario."""
    store = ResultStore(root)
    for i, w in enumerate((2.0, 32.0, 256.0)):
        store.put(
            _record(
                "fig3-mst-tradeoff",
                f"k{i}",
                {"n": 24, "aspect_ratio": w, "engine": "event"},
                {
                    "W": w,
                    "elkin_rounds": 100 * (i + 1),
                    "gkp_rounds": 80 * (i + 2),
                    "combined_rounds": 100 * (i + 1),
                    "formula_lower_bound": 10.0 * (i + 1),
                    "formula_upper_bound": 1000.0 * (i + 1),
                },
            )
        )
    for i, w in enumerate((256.0, 1024.0)):
        store.put(
            _record(
                "fig3-engine-speedup",
                f"s{i}",
                {"n": 24, "aspect_ratio": w},
                {
                    "W": w,
                    "dense_seconds": 0.8 + i,
                    "event_seconds": 0.1,
                    "speedup": 8.0 * (i + 1),
                    "engines_agree": True,
                },
            )
        )
    store.put(
        _record(
            "ghost-scenario",
            "g0",
            {"alpha": 1},
            {"metric": 3.5},
        )
    )
    store.put(
        _record(
            "ghost-scenario",
            "g1",
            {"alpha": 2},
            None,
            status="error",
            error="Traceback ...\nValueError: boom",
        )
    )
    return store


class TestSvg:
    def test_linear_ticks_nice_steps(self):
        ticks = linear_ticks(0.0, 10.0)
        assert ticks[0] == 0.0
        assert all(b - a == ticks[1] - ticks[0] for a, b in zip(ticks, ticks[1:]))
        assert 3 <= len(ticks) <= 7

    def test_log_ticks_powers_of_ten(self):
        assert log_ticks(2.0, 8000.0) == [1.0, 10.0, 100.0, 1000.0, 10000.0]

    def test_render_plot_deterministic_and_wellformed(self):
        series = [Series.of("a", [(1, 2), (10, 20), (100, 15)])]
        one = render_plot("t", series, logx=True)
        two = render_plot("t", series, logx=True)
        assert one == two
        ET.fromstring(one)  # raises if not valid XML

    def test_log_axis_drops_nonpositive_points(self):
        svg = render_plot("t", [Series.of("a", [(0, 5), (-1, 6), (10, 7)])], logx=True)
        assert svg.count("<circle") == 1

    def test_no_data_renders_placeholder(self):
        svg = render_plot("empty", [])
        assert "no plottable data" in svg

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown plot kind"):
            render_plot("t", [], kind="pie")

    def test_bar_chart_one_rect_per_value(self):
        svg = render_bar_chart(
            "t", ["x", "y"], [Series.of("s", [(0, 3.0), (1, 5.0)])]
        )
        assert svg.count('fill="#2563eb"') == 2 + 1  # 2 bars + legend swatch
        ET.fromstring(svg)

    def test_escapes_markup_in_labels(self):
        svg = render_plot("<b>&title", [Series.of("a<b", [(1, 1), (2, 2)])])
        assert "<b>" not in svg.replace("<b>&amp;title", "")
        assert "&lt;b&gt;" in svg


class TestModel:
    def test_axes_fixed_and_status_tally(self, tmp_path):
        store = _fig3_store(tmp_path)
        reports = {r.name: r for r in build_reports(list(store.iter_records()))}
        fig3 = reports["fig3-mst-tradeoff"]
        assert list(fig3.axes) == ["aspect_ratio"]
        assert fig3.axes["aspect_ratio"] == [2.0, 32.0, 256.0]
        assert fig3.fixed == {"n": 24, "engine": "event"}
        assert (fig3.n_ok, fig3.n_error, fig3.n_timeout) == (3, 0, 0)
        ghost = reports["ghost-scenario"]
        assert (ghost.n_ok, ghost.n_error) == (1, 1)
        assert ghost.scenario is None  # not registered; page still renders

    def test_declared_plot_specs_resolve_to_series(self, tmp_path):
        store = _fig3_store(tmp_path)
        reports = {r.name: r for r in build_reports(list(store.iter_records()))}
        fig3 = reports["fig3-mst-tradeoff"]
        specs = fig3.plot_specs()
        assert [s.name for s in specs] == ["rounds-vs-w", "bounds-vs-w"]
        series, categories = plot_series(fig3, specs[0])
        assert categories == []
        assert [s.label for s in series] == [
            "elkin_rounds",
            "gkp_rounds",
            "combined_rounds",
        ]
        assert series[0].points == ((2.0, 100.0), (32.0, 200.0), (256.0, 300.0))

    def test_unregistered_scenario_synthesises_default_spec(self, tmp_path):
        store = _fig3_store(tmp_path)
        reports = {r.name: r for r in build_reports(list(store.iter_records()))}
        specs = reports["ghost-scenario"].plot_specs()
        assert len(specs) == 1
        assert specs[0].x == "alpha" and specs[0].ys == ("metric",)

    def test_line_series_average_replicates(self):
        records = [
            _record("test-rep-plot", f"r{i}", {"x": 2}, {"y": y}, seed=i)
            for i, y in enumerate((10.0, 30.0))
        ]
        report = build_reports(records)[0]
        series, _ = plot_series(
            report, PlotSpec(name="p", title="p", x="x", ys=("y",))
        )
        assert series[0].points == ((2.0, 20.0),)

    def test_group_by_splits_series(self):
        records = [
            _record("test-rep-plot", f"g{i}", {"x": i, "kind": kind}, {"y": i * 1.0})
            for i, kind in enumerate(("a", "b", "a", "b"))
        ]
        report = build_reports(records)[0]
        series, _ = plot_series(
            report,
            PlotSpec(name="p", title="p", x="x", ys=("y",), group_by="kind"),
        )
        assert [s.label for s in series] == ["y kind=a", "y kind=b"]

    def test_plotspec_validation(self):
        with pytest.raises(ValueError, match="unknown plot kind"):
            PlotSpec(name="p", title="p", x="x", ys=("y",), kind="pie")
        with pytest.raises(ValueError, match="no y series"):
            PlotSpec(name="p", title="p", x="x", ys=())

    def test_builtin_scenarios_declare_plots(self):
        for name in ("fig3-mst-tradeoff", "boruvka-mst-sweep", "fig2-bound-table"):
            assert get_scenario(name).plots, f"{name} lost its plot specs"


class TestSite:
    def test_site_deterministic_for_fixed_store(self, tmp_path):
        store = _fig3_store(tmp_path / "store")
        bench = tmp_path / "BENCH_test.json"
        bench.write_text(json.dumps({"benchmark": "b", "speedup": 2.5}))
        index1 = build_site(store, tmp_path / "site1", bench_paths=[bench])
        index2 = build_site(store, tmp_path / "site2", bench_paths=[bench])
        pages1 = {p.name: p.read_bytes() for p in index1.parent.iterdir()}
        pages2 = {p.name: p.read_bytes() for p in index2.parent.iterdir()}
        assert pages1 == pages2
        assert set(pages1) == {
            "index.html",
            "fig3-mst-tradeoff.html",
            "fig3-engine-speedup.html",
            "ghost-scenario.html",
        }

    def test_fig3_and_speedup_pages_embed_plots(self, tmp_path):
        store = _fig3_store(tmp_path / "store")
        index = build_site(store, tmp_path / "site")
        tradeoff = (index.parent / "fig3-mst-tradeoff.html").read_text()
        speedup = (index.parent / "fig3-engine-speedup.html").read_text()
        assert tradeoff.count("<svg") >= 2
        assert "Fig. 3 — MST rounds vs aspect ratio W" in tradeoff
        assert speedup.count("<svg") >= 2
        assert "speedup" in speedup

    def test_pages_are_self_contained(self, tmp_path):
        store = _fig3_store(tmp_path / "store")
        index = build_site(store, tmp_path / "site")
        for page in index.parent.glob("*.html"):
            text = page.read_text()
            assert "<style>" in text and "<script" not in text
            assert not re.search(r'(src|href)="https?://', text)

    def test_nonfinite_metrics_render_instead_of_crashing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(
            _record(
                "ghost-scenario",
                "nf",
                {"alpha": 1},
                {"metric": float("inf"), "other": float("nan")},
            )
        )
        index = build_site(store, tmp_path / "site")
        page = (index.parent / "ghost-scenario.html").read_text()
        assert "inf" in page and "nan" in page

    def test_index_em_dash_for_unswept_scenarios(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_record("ghost-scenario", "g0", {"alpha": 1}, {"metric": 1.0}))
        index = build_site(store, tmp_path / "site")
        text = index.read_text()
        assert "—" in text and "&amp;mdash;" not in text

    def test_error_records_surface_on_page(self, tmp_path):
        store = _fig3_store(tmp_path / "store")
        build_site(store, tmp_path / "site")
        ghost = (tmp_path / "site" / "ghost-scenario.html").read_text()
        assert "ValueError: boom" in ghost
        assert 'class="status-error"' in ghost

    def test_empty_store_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no records"):
            build_site(ResultStore(tmp_path / "nothing"), tmp_path / "site")

    def test_scenario_filter(self, tmp_path):
        store = _fig3_store(tmp_path / "store")
        index = build_site(store, tmp_path / "site", scenario="fig3-mst-tradeoff")
        names = {p.name for p in index.parent.iterdir()}
        assert names == {"index.html", "fig3-mst-tradeoff.html"}

    def test_page_name_slugs(self):
        assert page_name("fig3-mst-tradeoff") == "fig3-mst-tradeoff.html"
        assert page_name("weird name/../x") == "weird-name----x.html"


class TestBenchExtraction:
    def test_pr2_shape(self):
        data = {
            "benchmark": "pr2-engine-speedup",
            "engine_comparison": {"speedup": 9.6, "dense_seconds": 0.6},
        }
        assert extract_speedups(data) == [("pr2-engine-speedup", 9.6)]

    def test_pr4_shape_with_threads(self):
        data = {
            "comparisons": [
                {"scenario": "fig3-mst-tradeoff", "threads": 4, "speedup": 1.02},
                {"scenario": "spanner-skeleton", "threads": 4, "speedup": 1.06},
            ]
        }
        assert extract_speedups(data) == [
            ("fig3-mst-tradeoff (4 thr)", 1.02),
            ("spanner-skeleton (4 thr)", 1.06),
        ]

    def test_no_speedups_no_chart(self):
        assert extract_speedups({"benchmark": "x", "seconds": 3}) == []


class TestCli:
    def test_report_html_builds_site(self, tmp_path, capsys):
        store = _fig3_store(tmp_path / "store")
        bench = tmp_path / "BENCH_cli.json"
        bench.write_text(json.dumps({"benchmark": "b", "speedup": 3.0}))
        code = cli_main(
            [
                "report",
                "--store",
                str(store.root),
                "--html",
                str(tmp_path / "site"),
                "--bench",
                str(tmp_path / "BENCH_*.json"),
            ]
        )
        assert code == 0
        assert "report site:" in capsys.readouterr().out
        index = (tmp_path / "site" / "index.html").read_text()
        assert "BENCH_cli.json" in index

    def test_report_format_json_round_trips(self, tmp_path, capsys):
        store = _fig3_store(tmp_path / "store")
        code = cli_main(["report", "--store", str(store.root), "--format", "json"])
        assert code == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 7
        assert {r["scenario"] for r in records} == {
            "fig3-mst-tradeoff",
            "fig3-engine-speedup",
            "ghost-scenario",
        }

    def test_report_empty_store_exits_1_in_every_format(self, tmp_path, capsys):
        for extra in ([], ["--format", "json"], ["--html", str(tmp_path / "s")]):
            code = cli_main(["report", "--store", str(tmp_path / "none"), *extra])
            assert code == 1
            assert "no records" in capsys.readouterr().out
        assert not (tmp_path / "s").exists()

    def test_render_scenario_page_handles_unregistered(self, tmp_path):
        store = _fig3_store(tmp_path)
        reports = build_reports(list(store.iter_records("ghost-scenario")))
        html = render_scenario_page(reports[0])
        assert "ghost-scenario" in html
