"""Kernel seam lockstep suite: stdlib reference vs numpy fast path.

The contract of :mod:`repro.congest.kernels` is that both implementations
are *bit-exact* interchangeable: every batch op returns identical values
(not merely equivalent ones), so a transport or reduction built on either
kernel produces byte-identical runs.  This suite enforces the contract
three ways:

1. randomized per-op lockstep (``group_round``, the edge clock,
   ``sort_edges_by_class``, ``first_eligible``, ``sum_bits``) over seeded
   shapes including the degenerate ones (empty, single row, one edge
   repeated, all edges distinct), with the numpy small-batch delegation
   disabled so the raw vectorized branches are what is being checked;
2. service-level lockstep (``MinEdgeIndex`` fragment-minimum winners,
   ``component_count_mst_weight`` union-find sweeps) on seeded graphs;
3. whole-run equality: the columnar engine pinned to each kernel must
   produce identical ``RunResult`` *and* identical opt-in message logs.

Plus the ``engine="auto"`` selection rules with numpy forced absent and
present.  Everything numpy-dependent skips cleanly when numpy is not
importable (the no-numpy CI leg), leaving the stdlib self-checks running.
"""

import random
from array import array

import pytest

import repro.congest.columnar as columnar_mod
import repro.congest.engine as engine_mod
import repro.congest.kernels as kernels_mod
from repro.algorithms.elkin import component_count_mst_weight, run_elkin_approx_mst
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst
from repro.congest.columnar import MinEdgeIndex
from repro.congest.engine import (
    AUTO_DENSE_NODES,
    ColumnarEngine,
    DenseEngine,
    EventEngine,
    get_engine,
)
from repro.congest.kernels import (
    NumpyKernels,
    StdlibKernels,
    numpy_available,
    resolve_kernels,
)
from repro.congest.network import CongestNetwork
from repro.congest.node import Node, NodeProgram
from repro.graphs.generators import random_connected_graph

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not importable")


def _weighted(n, seed, extra_edge_prob=0.12):
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    rng = random.Random(seed + 1)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


def _delivery_sequence(eids, group):
    """The (eid, staging row) delivery order a block emits from a group.

    This is the value the transport actually consumes, and what must be
    identical across kernels.  The internal representation may differ --
    ``order=range(n)`` with ``edge_counts=None`` means "staging order"
    whether or not edges repeat, while the general branch spells out the
    per-edge runs -- so the comparison derives the sequence both encode.
    """
    if group.edge_counts is None:
        return [(int(eids[i]), i) for i in group.order]
    seq = []
    pos = 0
    order = list(group.order)
    for eid, count in zip(group.edge_order, group.edge_counts):
        for i in order[pos : pos + count]:
            seq.append((int(eid), i))
        pos += count
    return seq


def _normalise(eids, group):
    """A RoundGroup's observable content, for cross-kernel comparison."""
    return (
        _delivery_sequence(eids, group),
        [int(e) for e in group.edge_order],
        [int(s) for s in group.edge_sums],
        int(group.total_bits),
        bool(group.all_fit),
        int(group.max_sum),
    )


def _check_group_invariants(eids, bits, bandwidth, group):
    """Properties any correct grouping must satisfy, kernel-agnostic."""
    n = len(eids)
    order = list(group.order)
    assert sorted(order) == list(range(n))
    # first-appearance edge order, FIFO within each edge
    seen: dict[int, int] = {}
    for i in range(n):
        seen.setdefault(eids[i], len(seen))
    by_first = sorted(set(eids), key=lambda e: seen[e])
    assert [int(e) for e in group.edge_order] == by_first
    sums: dict[int, int] = {}
    for eid, b in zip(eids, bits):
        sums[eid] = sums.get(eid, 0) + b
    assert [int(s) for s in group.edge_sums] == [sums[e] for e in by_first]
    assert int(group.total_bits) == sum(bits)
    assert int(group.max_sum) == (max(sums.values()) if sums else 0)
    assert bool(group.all_fit) == (group.max_sum <= bandwidth)
    if group.edge_counts is None:
        assert order == list(range(n))
    else:
        counts = [int(c) for c in group.edge_counts]
        assert sum(counts) == n
        # each per-edge run of `order` is that edge's staging rows, FIFO
        pos = 0
        for eid, count in zip(by_first, counts):
            run = order[pos : pos + count]
            assert run == [i for i in range(n) if eids[i] == eid]
            pos += count


class TestGroupRoundLockstep:
    SHAPES = [
        (0, 1),  # empty flush
        (1, 1),
        (2, 1),  # both same-edge and distinct-edge cases arise over seeds
        (2, 2),
        (7, 3),
        (40, 5),
        (40, 40),
        (130, 9),  # above NUMPY_MIN_GROUP: the raw vectorized path by default
        (130, 130),
        (400, 23),
        (257, 1),  # one edge repeated: k == 1
    ]

    def _instance(self, n, n_edges, seed):
        rng = random.Random(seed * 1000 + n)
        eids = array("q", (rng.randrange(n_edges) for _ in range(n)))
        bits = array("q", (rng.randrange(1, 200) for _ in range(n)))
        return eids, bits

    @pytest.mark.parametrize("n,n_edges", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stdlib_invariants(self, n, n_edges, seed):
        eids, bits = self._instance(n, n_edges, seed)
        for bandwidth in (1, 128, 10**9):
            group = StdlibKernels.group_round(eids, bits, bandwidth)
            _check_group_invariants(list(eids), list(bits), bandwidth, group)

    @needs_numpy
    @pytest.mark.parametrize("n,n_edges", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_numpy_matches_stdlib(self, n, n_edges, seed, monkeypatch):
        # Disable the small-batch delegation so the raw numpy branch is
        # exercised at every size, not just above the crossover.
        monkeypatch.setattr(kernels_mod, "NUMPY_MIN_GROUP", 0)
        eids, bits = self._instance(n, n_edges, seed)
        for bandwidth in (1, 128, 10**9):
            ref = StdlibKernels.group_round(eids, bits, bandwidth)
            fast = NumpyKernels.group_round(eids, bits, bandwidth)
            assert _normalise(eids, fast) == _normalise(eids, ref)


class TestClockLockstep:
    def _drive(self, kernels, script):
        """Run an install/advance script; return the observable trace."""
        trace = []
        clock = 0
        for op in script:
            if op[0] == "install":
                _, eid, delay, seq = op
                kernels.clock_install(eid, clock + delay, seq)
            else:
                clock += 1
                trace.append(
                    (
                        kernels.clock_min(),
                        kernels.clock_min_edge(),
                        kernels.clock_due(clock),
                        kernels.clock_min(),  # refreshed after the pops
                    )
                )
        return trace

    def _script(self, seed):
        rng = random.Random(seed)
        script = []
        seq = 0
        live: set[int] = set()
        for _ in range(300):
            if live and rng.random() < 0.55:
                script.append(("advance",))
            else:
                eid = rng.randrange(64)
                if eid in live:
                    continue  # one schedule entry per live edge, like the transport
                live.add(eid)
                seq += 1
                script.append(("install", eid, rng.randrange(1, 9), seq))
        return script

    @needs_numpy
    @pytest.mark.parametrize("seed", [0, 5, 12, 99])
    def test_due_order_and_minima_match(self, seed):
        script = self._script(seed)
        # The script never re-installs a live edge, but edges popped by
        # clock_due can be reinstalled later -- mirror the transport by
        # replaying pops into the live set via the stdlib trace first.
        ref = self._drive(StdlibKernels(), script)
        fast = self._drive(NumpyKernels(), script)
        assert fast == ref

    def test_stdlib_due_is_seq_ordered(self):
        k = StdlibKernels()
        k.clock_install(5, 1, 3)
        k.clock_install(2, 1, 1)
        k.clock_install(9, 1, 2)
        assert k.clock_due(1) == [2, 9, 5]
        assert k.clock_min() is None
        assert k.clock_min_edge() is None


class TestHelperLockstep:
    @needs_numpy
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_sort_edges_by_class_stable_match(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(0, 300)
        classes = [rng.randrange(6) for _ in range(n)]  # heavy duplication
        us = [rng.randrange(50) for _ in range(n)]
        vs = [rng.randrange(50) for _ in range(n)]
        ref = StdlibKernels.sort_edges_by_class(classes, us, vs)
        fast = NumpyKernels.sort_edges_by_class(classes, us, vs)
        assert fast == ref

    @needs_numpy
    @pytest.mark.parametrize("seed", range(6))
    def test_first_eligible_match(self, seed):
        rng = random.Random(seed)
        flags = [rng.random() < 0.15 for _ in range(rng.randrange(1, 120))]
        assert NumpyKernels.first_eligible(flags) == StdlibKernels.first_eligible(flags)
        assert NumpyKernels.first_eligible([False] * 40 ) == -1
        assert StdlibKernels.first_eligible([]) == -1

    @needs_numpy
    def test_sum_bits_match(self):
        for n in (0, 1, 63, 64, 500):
            bits = array("q", range(1, n + 1))
            assert NumpyKernels.sum_bits(bits) == StdlibKernels.sum_bits(bits) == sum(bits)


class TestFragmentMinimumLockstep:
    @needs_numpy
    @pytest.mark.parametrize("seed", [0, 4, 21])
    def test_min_edge_index_winners_match(self, seed, monkeypatch):
        # Force the vector path on every node, whatever its degree.
        monkeypatch.setattr(columnar_mod, "NUMPY_MIN_DEGREE", 1)
        graph = _weighted(30, seed)
        ref = MinEdgeIndex(graph, kernels=StdlibKernels)
        fast = MinEdgeIndex(graph, kernels=NumpyKernels)
        rng = random.Random(seed + 7)
        labels = {repr(u): rng.randrange(4) for u in graph.nodes()}
        for u in graph.nodes():
            mine = labels[repr(u)]
            assert fast.min_outgoing(u, labels, mine) == ref.min_outgoing(u, labels, mine)
            exclude = {repr(v) for v in list(graph.neighbors(u))[::2]}
            assert fast.min_outgoing_by_repr(u, labels, mine, exclude) == ref.min_outgoing_by_repr(
                u, labels, mine, exclude
            )

    @needs_numpy
    @pytest.mark.parametrize("seed", [0, 9])
    def test_component_count_sweep_matches(self, seed):
        n_classes = 12
        graph = random_connected_graph(40, extra_edge_prob=0.2, seed=seed)
        rng = random.Random(seed)
        for u, v in graph.edges():
            graph.edges[u, v]["weight"] = rng.randrange(1, n_classes + 1)
        ref = component_count_mst_weight(graph, n_classes, kernels=StdlibKernels)
        fast = component_count_mst_weight(graph, n_classes, kernels=NumpyKernels)
        assert fast == ref


class _PingPong(NodeProgram):
    """Broadcast-heavy two-phase toy program for the message-log check."""

    def on_start(self, node: Node) -> None:
        node.broadcast((node.id, "hello"))

    def on_round(self, node: Node, round_no: int, inbox, **_) -> None:
        if round_no == 1:
            for msg in inbox:
                node.send(msg.sender, (node.id, "ack", msg.payload[0]))
        elif inbox:
            node.halt(len(inbox))
        elif round_no > 3:
            node.halt(0)


class TestWholeRunLockstep:
    """Columnar runs pinned to each kernel must be byte-identical."""

    @staticmethod
    def _match(a, b):
        assert a.rounds == b.rounds
        assert a.total_messages == b.total_messages
        assert a.total_bits == b.total_bits
        assert a.per_round_bits == b.per_round_bits
        assert a.max_edge_bits_per_round == b.max_edge_bits_per_round
        assert {nid: repr(o) for nid, o in a.outputs.items()} == {
            nid: repr(o) for nid, o in b.outputs.items()
        }

    @needs_numpy
    @pytest.mark.parametrize("seed", [0, 13])
    def test_gkp_runs_identical(self, seed):
        graph = _weighted(24, seed)
        e_ref, r_ref = run_gkp_mst(graph, bandwidth=128, seed=0, engine="columnar-stdlib")
        e_fast, r_fast = run_gkp_mst(graph, bandwidth=128, seed=0, engine="columnar-numpy")
        assert e_fast == e_ref
        self._match(r_ref, r_fast)

    @needs_numpy
    def test_boruvka_runs_identical(self):
        graph = _weighted(20, 3)
        e_ref, r_ref = run_boruvka_mst(graph, bandwidth=128, seed=0, engine="columnar-stdlib")
        e_fast, r_fast = run_boruvka_mst(graph, bandwidth=128, seed=0, engine="columnar-numpy")
        assert e_fast == e_ref
        self._match(r_ref, r_fast)

    @needs_numpy
    def test_elkin_runs_identical(self):
        graph = _weighted(22, 11)
        w_ref, r_ref = run_elkin_approx_mst(graph, alpha=2.0, engine="columnar-stdlib")
        w_fast, r_fast = run_elkin_approx_mst(graph, alpha=2.0, engine="columnar-numpy")
        assert w_fast == w_ref
        self._match(r_ref, r_fast)

    @needs_numpy
    def test_message_logs_identical(self):
        graph = random_connected_graph(18, extra_edge_prob=0.3, seed=2)
        logs = {}
        results = {}
        for spec in ("columnar-stdlib", "columnar-numpy"):
            network = CongestNetwork(
                graph, _PingPong, bandwidth=64, engine=spec, record_messages=True
            )
            results[spec] = network.run(max_rounds=50)
            logs[spec] = list(network.transport.message_log)
        assert logs["columnar-numpy"] == logs["columnar-stdlib"]
        self._match(results["columnar-stdlib"], results["columnar-numpy"])


class TestAutoSelection:
    def test_tiny_graph_runs_dense(self):
        graph = random_connected_graph(AUTO_DENSE_NODES, seed=0)
        assert isinstance(get_engine("auto", graph=graph), DenseEngine)

    def test_numpy_absent_falls_back_to_event(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "numpy_available", lambda: False)
        graph = random_connected_graph(AUTO_DENSE_NODES + 10, seed=0)
        assert isinstance(get_engine("auto", graph=graph), EventEngine)
        # No graph to inspect: availability alone decides.
        assert isinstance(get_engine("auto"), EventEngine)

    @needs_numpy
    def test_numpy_present_picks_columnar_numpy(self):
        graph = random_connected_graph(AUTO_DENSE_NODES + 10, seed=0)
        engine = get_engine("auto", graph=graph)
        assert isinstance(engine, ColumnarEngine)
        assert engine.kernels.name == "numpy"
        assert isinstance(get_engine("auto"), ColumnarEngine)

    def test_auto_kernels_follow_columnar_guard(self, monkeypatch):
        monkeypatch.setattr(columnar_mod, "_np", None)
        assert ColumnarEngine(kernels="auto").kernels is StdlibKernels

    @needs_numpy
    def test_pinned_numpy_spec_does_not_fall_back(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_np", None)
        with pytest.raises(ImportError):
            resolve_kernels("numpy")

    def test_unknown_specs_raise(self):
        with pytest.raises(ValueError):
            resolve_kernels("fortran")
        with pytest.raises(ValueError):
            get_engine("no-such-engine")

    def test_network_threads_auto_through_engine_param(self):
        graph = random_connected_graph(AUTO_DENSE_NODES, seed=1)
        network = CongestNetwork(graph, _PingPong, engine="auto")
        assert isinstance(network.engine, DenseEngine)
