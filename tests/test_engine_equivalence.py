"""Cross-engine equivalence: Dense, Event, Parallel and Columnar must agree.

Every registered algorithm family runs on each engine over seeded random
graphs; the full ``RunResult`` must match the dense reference field for
field (rounds, bits, messages, outputs, halted -- and the per-round bit
trace, which pins down the transport's O(1) skip accounting exactly).  This
is the contract that makes the event engine a drop-in default and the
thread-sharded parallel engine a drop-in accelerator: any idleness hint
that skips a round the dense engine needed, or any shard merge that
reorders state the serial engines build, would show up here as a
divergence.

The parallel engine is instantiated with ``min_parallel_nodes=1`` so every
round genuinely fans out across the thread pool -- the inline small-round
fallback must not be what makes these tests pass.  The columnar engine
swaps the whole transport layout (struct-of-arrays staging, lazy per-edge
head accounting, a completion-clock heap) plus the batched min-edge
reduction service, so its runs pin all of that to the reference semantics
at once.
"""

import networkx as nx
import pytest

from repro.algorithms.centralised import run_centralised
from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    ConvergecastPhase,
    LeaderElectionPhase,
    LocalComputationPhase,
    PhasedProgram,
    PipelinedDowncastPhase,
    PipelinedUpcastPhase,
)
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst, tree_weight
from repro.algorithms.paths import run_bellman_ford
from repro.algorithms.verification import run_verification
from repro.congest.engine import ParallelEngine, get_engine
from repro.congest.network import CongestNetwork, run_program
from repro.congest.node import Node, NodeProgram
from repro.graphs.generators import random_connected_graph

#: The engines checked against the dense reference.
ENGINES = ("event", "parallel", "columnar")


def make_engine(name):
    """An engine-under-test instance (or name) for one run.

    ``parallel`` gets 4 threads and no inline fallback, so the sharded step
    path -- thread-local staging, barrier, node-id-order merge -- is what
    actually executes, even on the small active sets of these tests.
    """
    if name == "parallel":
        return ParallelEngine(threads=4, min_parallel_nodes=1)
    return name


def assert_results_match(dense, other):
    """Field-for-field RunResult equality (outputs compared by repr)."""
    assert other.rounds == dense.rounds
    assert other.total_messages == dense.total_messages
    assert other.total_bits == dense.total_bits
    assert other.halted == dense.halted
    assert other.max_edge_bits_per_round == dense.max_edge_bits_per_round
    assert other.per_round_bits == dense.per_round_bits
    assert set(other.outputs) == set(dense.outputs)
    for nid in dense.outputs:
        assert repr(other.outputs[nid]) == repr(dense.outputs[nid]), nid


def _weighted(n, seed, extra_edge_prob=0.1):
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    import random as _random

    rng = _random.Random(seed + 1)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


class TestMstEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_gkp_mst(self, seed, engine):
        graph = _weighted(26, seed)
        edges_dense, dense = run_gkp_mst(graph, bandwidth=128, seed=0, engine="dense")
        edges_other, other = run_gkp_mst(
            graph, bandwidth=128, seed=0, engine=make_engine(engine)
        )
        assert_results_match(dense, other)
        assert edges_other == edges_dense
        reference = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
        )
        assert abs(tree_weight(graph, edges_other) - reference) < 1e-9

    @pytest.mark.parametrize("engine", ENGINES)
    def test_boruvka_mst(self, engine):
        graph = _weighted(16, 3)
        edges_dense, dense = run_boruvka_mst(graph, bandwidth=128, seed=0, engine="dense")
        edges_other, other = run_boruvka_mst(
            graph, bandwidth=128, seed=0, engine=make_engine(engine)
        )
        assert_results_match(dense, other)
        assert edges_other == edges_dense

    @pytest.mark.parametrize("engine", ENGINES)
    def test_elkin_staged_flood(self, engine):
        graph = _weighted(24, 11)
        weight_dense, dense = run_elkin_approx_mst(graph, alpha=2.0, engine="dense")
        weight_other, other = run_elkin_approx_mst(
            graph, alpha=2.0, engine=make_engine(engine)
        )
        assert_results_match(dense, other)
        assert weight_other == weight_dense


class TestVerificationEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "problem", ["spanning tree", "connectivity", "bipartiteness", "s-t connectivity", "cut"]
    )
    def test_verifiers(self, problem, engine):
        graph = random_connected_graph(18, extra_edge_prob=0.15, seed=5)
        tree = nx.bfs_tree(graph, source=min(graph.nodes())).to_undirected()
        m_edges = list(tree.edges())
        nodes = sorted(graph.nodes())
        kwargs = {"s": nodes[0], "t": nodes[-1]}
        verdict_dense, dense = run_verification(
            problem, graph, m_edges, bandwidth=64, seed=0, engine="dense", **kwargs
        )
        verdict_other, other = run_verification(
            problem, graph, m_edges, bandwidth=64, seed=0, engine=make_engine(engine), **kwargs
        )
        assert_results_match(dense, other)
        assert verdict_other == verdict_dense


class TestQuiescenceEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [2, 9])
    def test_bellman_ford(self, seed, engine):
        graph = _weighted(25, seed)
        source = min(graph.nodes())
        dist_dense, dense = run_bellman_ford(graph, source, engine="dense")
        dist_other, other = run_bellman_ford(graph, source, engine=make_engine(engine))
        assert_results_match(dense, other)
        assert dist_other == dist_dense
        expected = nx.single_source_dijkstra_path_length(graph, source)
        assert dist_other == pytest.approx(expected)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_quiescent_from_start(self, engine):
        # No program ever sends: every engine stops at the same (zero-ish)
        # round under quiescence detection.
        class Silent(NodeProgram):
            def on_round(self, node, round_no, inbox):
                pass

        graph = nx.path_graph(4)
        dense_net = CongestNetwork(graph, Silent, bandwidth=8, engine="dense")
        dense = dense_net.run(max_rounds=500, stop_on_quiescence=True)
        other_net = CongestNetwork(graph, Silent, bandwidth=8, engine=make_engine(engine))
        other = other_net.run(max_rounds=500, stop_on_quiescence=True)
        assert_results_match(dense, other)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_max_rounds_without_halting(self, engine):
        # Nodes never halt and traffic dies out: the active-set engines must
        # idle the clock out to max_rounds exactly like the dense engine.
        class OneShot(NodeProgram):
            def on_start(self, node):
                if node.id == 0:
                    node.broadcast(("x",))

            def on_round(self, node, round_no, inbox):
                pass

            def next_active_round(self, node, after_round):
                return None  # reactive only

        graph = nx.path_graph(3)
        dense = run_program(graph, OneShot, bandwidth=8, max_rounds=300, engine="dense")
        other = run_program(
            graph, OneShot, bandwidth=8, max_rounds=300, engine=make_engine(engine)
        )
        assert_results_match(dense, other)
        assert other.rounds == 300
        assert not other.halted


class TestFrameworkEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_leader_bfs_convergecast_broadcast(self, engine):
        graph = random_connected_graph(20, extra_edge_prob=0.1, seed=4)
        d = nx.diameter(graph)
        inputs = {node: {"diameter_bound": d} for node in graph.nodes()}

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                ConvergecastPhase("total", lambda node, shared: 1, lambda a, b: a + b),
                LocalComputationPhase(
                    lambda node, shared: shared.update(
                        total=shared["total"] if shared["parent"] is None else None
                    )
                ),
                BroadcastPhase("total"),
                LocalComputationPhase(lambda node, shared: shared.update(output=shared["total"])),
            ]

        results = {}
        for spec in ("dense", make_engine(engine)):
            network = CongestNetwork(
                graph,
                lambda: PhasedProgram(phases()),
                bandwidth=64,
                inputs=inputs,
                engine=spec,
            )
            results[spec if isinstance(spec, str) else engine] = network.run()
        assert_results_match(results["dense"], results[engine])
        assert results[engine].unanimous_output() == 20

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pipelined_up_and_downcast(self, engine):
        graph = random_connected_graph(12, extra_edge_prob=0.1, seed=8)
        d = nx.diameter(graph)
        inputs = {node: {"diameter_bound": d} for node in graph.nodes()}

        def stage(node, shared):
            shared["items"] = [int(str(node.id))]
            shared["cap"] = 14

        def restage(node, shared):
            shared["down"] = shared["collected"] if shared["parent"] is None else []

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage),
                PipelinedUpcastPhase("items", "collected", "cap"),
                LocalComputationPhase(restage),
                PipelinedDowncastPhase("down", "cap"),
                LocalComputationPhase(
                    lambda node, shared: shared.update(output=sorted(shared["down"]))
                ),
            ]

        results = {}
        for spec in ("dense", make_engine(engine)):
            network = CongestNetwork(
                graph,
                lambda: PhasedProgram(phases()),
                bandwidth=128,
                inputs=inputs,
                engine=spec,
            )
            results[spec if isinstance(spec, str) else engine] = network.run()
        assert_results_match(results["dense"], results[engine])
        assert results[engine].unanimous_output() == sorted(range(12))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_centralised_skeleton(self, engine):
        graph = _weighted(14, 6)
        answer_dense, dense = run_centralised(
            graph, lambda g: g.number_of_edges(), bandwidth=128, engine="dense"
        )
        answer_other, other = run_centralised(
            graph, lambda g: g.number_of_edges(), bandwidth=128, engine=make_engine(engine)
        )
        assert_results_match(dense, other)
        assert answer_other == graph.number_of_edges()


class TestDefaultHintsEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_unhinted_program_runs_identically(self, engine):
        # A program with no idleness hints: the active-set engines
        # degenerate to stepping every node every round and must match
        # exactly -- for the parallel engine this is the all-nodes-sharded
        # hot path.
        class Chatter(NodeProgram):
            def on_start(self, node):
                node.broadcast(("r", 0), bits=8)

            def on_round(self, node, round_no, inbox):
                if round_no >= 6:
                    node.halt(len(inbox))
                    return
                node.broadcast(("r", round_no), bits=8)

        graph = random_connected_graph(10, extra_edge_prob=0.2, seed=12)
        dense = run_program(graph, Chatter, bandwidth=8, engine="dense")
        other = run_program(graph, Chatter, bandwidth=8, engine=make_engine(engine))
        assert_results_match(dense, other)


class TestMessageLogEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_opt_in_message_log_is_byte_identical(self, engine):
        """record_messages=True: the (round, sender, receiver, bits) log --
        an *ordered* artifact -- must come out identical, which pins the
        parallel engine's node-id-order outbox merge exactly."""

        class Chatter(NodeProgram):
            def on_start(self, node):
                node.broadcast(("hello", repr(node.id)), bits=16)

            def on_round(self, node, round_no, inbox):
                if round_no >= 5:
                    node.halt(len(inbox))
                    return
                for msg in inbox:
                    node.send(msg.sender, ("echo", round_no), bits=8)

        graph = random_connected_graph(14, extra_edge_prob=0.2, seed=21)
        logs = {}
        results = {}
        for name, spec in (("dense", "dense"), (engine, make_engine(engine))):
            network = CongestNetwork(
                graph, Chatter, bandwidth=16, engine=spec, record_messages=True
            )
            results[name] = network.run()
            logs[name] = list(network.message_log)
        assert_results_match(results["dense"], results[engine])
        assert logs[engine] == logs["dense"]
        assert len(logs["dense"]) == results["dense"].total_messages


class TestParallelDeterminism:
    def test_one_vs_many_threads_identical_run_results(self):
        """ParallelEngine must be a pure function of the program: 1 thread
        (the degenerate serial path) and N threads (real shard fan-out)
        produce field-identical RunResults and message logs."""
        from repro.algorithms.mst import BoruvkaMSTProgram

        graph = _weighted(26, 7)
        runs = {}
        for threads in (1, 4):
            engine = ParallelEngine(threads=threads, min_parallel_nodes=1)
            network = CongestNetwork(
                graph,
                BoruvkaMSTProgram,
                bandwidth=128,
                seed=0,
                engine=engine,
                record_messages=True,
            )
            runs[threads] = (network.run(max_rounds=500_000), list(network.message_log))
        result_1, log_1 = runs[1]
        result_4, log_4 = runs[4]
        assert_results_match(result_1, result_4)
        assert log_1 == log_4

    def test_thread_counts_do_not_change_boruvka(self):
        graph = _weighted(18, 13)
        reference = None
        for threads in (1, 2, 4, 8):
            edges, result = run_boruvka_mst(
                graph,
                bandwidth=128,
                seed=0,
                engine=ParallelEngine(threads=threads, min_parallel_nodes=1),
            )
            if reference is None:
                reference = (edges, result)
            else:
                assert edges == reference[0]
                assert_results_match(reference[1], result)

    def test_strict_error_path_metrics_match_serial(self):
        """A strict-mode violation mid-round: the parallel engine must
        raise the same error AND leave the same transport totals as the
        serial engines -- sends staged by nodes before the offender count,
        later shards' outboxes are discarded."""
        from repro.congest.network import BandwidthExceeded

        class OneOversized(NodeProgram):
            def on_start(self, node):
                node.broadcast(("warmup",), bits=4)

            def on_round(self, node, round_no, inbox):
                if node.id == 5:
                    node.send(node.neighbors[0], ("too-big",), bits=999)
                else:
                    node.broadcast(("ok", round_no), bits=4)

        graph = nx.path_graph(8)
        totals = {}
        for name, spec in (
            ("dense", "dense"),
            ("event", "event"),
            ("columnar", "columnar"),
            ("parallel", ParallelEngine(threads=4, min_parallel_nodes=1)),
        ):
            network = CongestNetwork(
                graph, OneOversized, bandwidth=8, strict=True, engine=spec
            )
            with pytest.raises(BandwidthExceeded):
                network.run(max_rounds=10)
            totals[name] = (network.total_messages, network.total_bits)
        assert totals["parallel"] == totals["dense"] == totals["event"]
        assert totals["columnar"] == totals["dense"]

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="threads"):
            ParallelEngine(threads=0)
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("bogus")
        assert get_engine("parallel", threads=3).threads == 3
        assert get_engine("parallel").threads >= 1


class TestIdlenessHints:
    def test_wants_round_is_the_boolean_view_of_next_active_round(self):
        graph = nx.path_graph(3)
        network = CongestNetwork(graph, NodeProgram, bandwidth=8)
        node = network.nodes[0]

        # Default hint: every round is active.
        default = NodeProgram()
        assert default.next_active_round(node, 5) == 6
        assert all(default.wants_round(node, r) for r in (1, 2, 10))

        # A purely reactive program wants no round spontaneously.
        class Reactive(NodeProgram):
            def next_active_round(self, node, after_round):
                return None

        assert not Reactive().wants_round(node, 1)

        # A scheduled program wants exactly its scheduled rounds.
        class EveryFifth(NodeProgram):
            def next_active_round(self, node, after_round):
                return after_round + (5 - after_round % 5)

        program = EveryFifth()
        assert [r for r in range(1, 12) if program.wants_round(node, r)] == [5, 10]


class TestFaultEquivalence:
    """The fault layer must preserve the cross-engine contract twice over:
    an *empty* plan is a transparent wrapper (byte-identical to no plan at
    all, message log included), and a *nontrivial* plan produces the same
    faulted run on every engine, because each decision hashes
    ``(seed, round, edge, msg_index)`` and nothing engine-shaped."""

    @staticmethod
    def _chatter():
        class Chatter(NodeProgram):
            def on_start(self, node):
                node.broadcast(("hello", repr(node.id)), bits=16)

            def on_round(self, node, round_no, inbox):
                if round_no >= 8:
                    node.halt(len(inbox))
                    return
                for msg in inbox:
                    node.send(msg.sender, ("echo", round_no), bits=8)

        return Chatter

    @pytest.mark.parametrize("engine", ("dense",) + ENGINES)
    def test_empty_plan_is_byte_identical_to_no_plan(self, engine):
        from repro.congest.faults import FaultPlan

        graph = random_connected_graph(14, extra_edge_prob=0.2, seed=21)
        runs = {}
        for faults in (None, FaultPlan()):
            network = CongestNetwork(
                graph,
                self._chatter(),
                bandwidth=16,
                engine=make_engine(engine),
                record_messages=True,
                faults=faults,
            )
            runs[faults is None] = (network.run(), list(network.message_log))
        bare, bare_log = runs[True]
        wrapped, wrapped_log = runs[False]
        assert_results_match(bare, wrapped)
        assert wrapped_log == bare_log
        assert bare.fault_stats is None and wrapped.fault_stats is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_nontrivial_plan_is_byte_identical_across_engines(self, engine):
        from repro.algorithms.paths import run_refreshing_bellman_ford
        from repro.congest.faults import FaultPlan

        graph = _weighted(20, 17)
        source = min(graph.nodes())
        plan = FaultPlan.generate(
            graph,
            seed=6,
            drop_prob=0.1,
            dup_prob=0.05,
            reorder_prob=0.1,
            n_crashes=2,
            crash_length=5,
            n_edge_deletes=1,
            n_edge_inserts=1,
            window=(1, 30),
            protect=[source],
        )
        dists_dense, dense = run_refreshing_bellman_ford(
            graph, source, max_rounds=50, engine="dense", faults=plan
        )
        dists_other, other = run_refreshing_bellman_ford(
            graph, source, max_rounds=50, engine=make_engine(engine), faults=plan
        )
        assert_results_match(dense, other)
        assert dists_other == dists_dense
        assert other.fault_stats == dense.fault_stats
        assert other.fault_stats is not None and other.fault_stats["drops"] > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_faulted_message_log_is_byte_identical(self, engine):
        """record_messages under a plan: the offered-load log (drops
        included, duplicates not) is an ordered artifact and must agree
        with the dense reference exactly."""
        from repro.congest.faults import FaultPlan

        graph = random_connected_graph(12, extra_edge_prob=0.2, seed=30)
        plan = FaultPlan(seed=8, drop_prob=0.2, dup_prob=0.1, crashes=((5, 3, 7),))
        logs = {}
        results = {}
        for name, spec in (("dense", "dense"), (engine, make_engine(engine))):
            network = CongestNetwork(
                graph,
                self._chatter(),
                bandwidth=16,
                engine=spec,
                record_messages=True,
                faults=plan,
            )
            results[name] = network.run()
            logs[name] = list(network.message_log)
        assert_results_match(results["dense"], results[engine])
        assert logs[engine] == logs["dense"]
        assert len(logs["dense"]) == results["dense"].total_messages


class TestEventEngineSkips:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_quiet_rounds_are_not_stepped(self, engine):
        # The Elkin staged flood is mostly quiet by design: the active-set
        # engines must step far fewer node-rounds than the dense n x rounds
        # grid (the parallel engine inherits the event clock, so its step
        # counter obeys the same bound).
        graph = _weighted(24, 11)
        from repro.algorithms.elkin import StagedLabelFloodProgram, quantise_weights

        classes, n_classes = quantise_weights(graph, 2.0)
        inputs = {
            node: {
                "edge_classes": {
                    repr(neighbor): classes[frozenset((node, neighbor))]
                    for neighbor in graph.neighbors(node)
                },
                "n_classes": n_classes,
                "tail": graph.number_of_nodes(),
            }
            for node in graph.nodes()
        }
        network = CongestNetwork(
            graph,
            StagedLabelFloodProgram,
            bandwidth=64,
            seed=0,
            inputs=inputs,
            engine=make_engine(engine),
        )
        result = network.run(max_rounds=200_000)
        dense_grid = result.rounds * graph.number_of_nodes()
        assert network.engine.node_steps < dense_grid / 3
