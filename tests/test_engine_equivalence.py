"""Cross-engine equivalence: DenseEngine and EventEngine must agree.

Every registered algorithm family runs on both engines over seeded random
graphs; the full ``RunResult`` must match field for field (rounds, bits,
messages, outputs, halted -- and the per-round bit trace, which pins down
the transport's O(1) skip accounting exactly).  This is the contract that
makes the event engine a drop-in default: any idleness hint that skips a
round the dense engine needed would show up here as a divergence.
"""

import networkx as nx
import pytest

from repro.algorithms.centralised import run_centralised
from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.framework import (
    BfsTreePhase,
    BroadcastPhase,
    ConvergecastPhase,
    LeaderElectionPhase,
    LocalComputationPhase,
    PhasedProgram,
    PipelinedDowncastPhase,
    PipelinedUpcastPhase,
)
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst, tree_weight
from repro.algorithms.paths import run_bellman_ford
from repro.algorithms.verification import run_verification
from repro.congest.network import CongestNetwork, run_program
from repro.congest.node import Node, NodeProgram
from repro.graphs.generators import random_connected_graph


def assert_results_match(dense, event):
    """Field-for-field RunResult equality (outputs compared by repr)."""
    assert event.rounds == dense.rounds
    assert event.total_messages == dense.total_messages
    assert event.total_bits == dense.total_bits
    assert event.halted == dense.halted
    assert event.max_edge_bits_per_round == dense.max_edge_bits_per_round
    assert event.per_round_bits == dense.per_round_bits
    assert set(event.outputs) == set(dense.outputs)
    for nid in dense.outputs:
        assert repr(event.outputs[nid]) == repr(dense.outputs[nid]), nid


def _weighted(n, seed, extra_edge_prob=0.1):
    graph = random_connected_graph(n, extra_edge_prob=extra_edge_prob, seed=seed)
    import random as _random

    rng = _random.Random(seed + 1)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


class TestMstEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_gkp_mst(self, seed):
        graph = _weighted(26, seed)
        edges_dense, dense = run_gkp_mst(graph, bandwidth=128, seed=0, engine="dense")
        edges_event, event = run_gkp_mst(graph, bandwidth=128, seed=0, engine="event")
        assert_results_match(dense, event)
        assert edges_event == edges_dense
        reference = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
        )
        assert abs(tree_weight(graph, edges_event) - reference) < 1e-9

    def test_boruvka_mst(self):
        graph = _weighted(16, 3)
        edges_dense, dense = run_boruvka_mst(graph, bandwidth=128, seed=0, engine="dense")
        edges_event, event = run_boruvka_mst(graph, bandwidth=128, seed=0, engine="event")
        assert_results_match(dense, event)
        assert edges_event == edges_dense

    def test_elkin_staged_flood(self):
        graph = _weighted(24, 11)
        weight_dense, dense = run_elkin_approx_mst(graph, alpha=2.0, engine="dense")
        weight_event, event = run_elkin_approx_mst(graph, alpha=2.0, engine="event")
        assert_results_match(dense, event)
        assert weight_event == weight_dense


class TestVerificationEquivalence:
    @pytest.mark.parametrize(
        "problem", ["spanning tree", "connectivity", "bipartiteness", "s-t connectivity", "cut"]
    )
    def test_verifiers(self, problem):
        graph = random_connected_graph(18, extra_edge_prob=0.15, seed=5)
        tree = nx.bfs_tree(graph, source=min(graph.nodes())).to_undirected()
        m_edges = list(tree.edges())
        nodes = sorted(graph.nodes())
        kwargs = {"s": nodes[0], "t": nodes[-1]}
        verdict_dense, dense = run_verification(
            problem, graph, m_edges, bandwidth=64, seed=0, engine="dense", **kwargs
        )
        verdict_event, event = run_verification(
            problem, graph, m_edges, bandwidth=64, seed=0, engine="event", **kwargs
        )
        assert_results_match(dense, event)
        assert verdict_event == verdict_dense


class TestQuiescenceEquivalence:
    @pytest.mark.parametrize("seed", [2, 9])
    def test_bellman_ford(self, seed):
        graph = _weighted(25, seed)
        source = min(graph.nodes())
        dist_dense, dense = run_bellman_ford(graph, source, engine="dense")
        dist_event, event = run_bellman_ford(graph, source, engine="event")
        assert_results_match(dense, event)
        assert dist_event == dist_dense
        expected = nx.single_source_dijkstra_path_length(graph, source)
        assert dist_event == pytest.approx(expected)

    def test_quiescent_from_start(self):
        # No program ever sends: both engines stop at the same (zero-ish)
        # round under quiescence detection.
        class Silent(NodeProgram):
            def on_round(self, node, round_no, inbox):
                pass

        graph = nx.path_graph(4)
        results = {}
        for engine in ("dense", "event"):
            network = CongestNetwork(graph, Silent, bandwidth=8, engine=engine)
            results[engine] = network.run(max_rounds=500, stop_on_quiescence=True)
        assert_results_match(results["dense"], results["event"])

    def test_max_rounds_without_halting(self):
        # Nodes never halt and traffic dies out: the event engine must
        # idle the clock out to max_rounds exactly like the dense engine.
        class OneShot(NodeProgram):
            def on_start(self, node):
                if node.id == 0:
                    node.broadcast(("x",))

            def on_round(self, node, round_no, inbox):
                pass

            def next_active_round(self, node, after_round):
                return None  # reactive only

        graph = nx.path_graph(3)
        results = {}
        for engine in ("dense", "event"):
            results[engine] = run_program(
                graph, OneShot, bandwidth=8, max_rounds=300, engine=engine
            )
        assert_results_match(results["dense"], results["event"])
        assert results["event"].rounds == 300
        assert not results["event"].halted


class TestFrameworkEquivalence:
    def test_leader_bfs_convergecast_broadcast(self):
        graph = random_connected_graph(20, extra_edge_prob=0.1, seed=4)
        d = nx.diameter(graph)
        inputs = {node: {"diameter_bound": d} for node in graph.nodes()}

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                ConvergecastPhase("total", lambda node, shared: 1, lambda a, b: a + b),
                LocalComputationPhase(
                    lambda node, shared: shared.update(
                        total=shared["total"] if shared["parent"] is None else None
                    )
                ),
                BroadcastPhase("total"),
                LocalComputationPhase(lambda node, shared: shared.update(output=shared["total"])),
            ]

        results = {}
        for engine in ("dense", "event"):
            network = CongestNetwork(
                graph,
                lambda: PhasedProgram(phases()),
                bandwidth=64,
                inputs=inputs,
                engine=engine,
            )
            results[engine] = network.run()
        assert_results_match(results["dense"], results["event"])
        assert results["event"].unanimous_output() == 20

    def test_pipelined_up_and_downcast(self):
        graph = random_connected_graph(12, extra_edge_prob=0.1, seed=8)
        d = nx.diameter(graph)
        inputs = {node: {"diameter_bound": d} for node in graph.nodes()}

        def stage(node, shared):
            shared["items"] = [int(str(node.id))]
            shared["cap"] = 14

        def restage(node, shared):
            shared["down"] = shared["collected"] if shared["parent"] is None else []

        def phases():
            return [
                LeaderElectionPhase(),
                BfsTreePhase(),
                LocalComputationPhase(stage),
                PipelinedUpcastPhase("items", "collected", "cap"),
                LocalComputationPhase(restage),
                PipelinedDowncastPhase("down", "cap"),
                LocalComputationPhase(
                    lambda node, shared: shared.update(output=sorted(shared["down"]))
                ),
            ]

        results = {}
        for engine in ("dense", "event"):
            network = CongestNetwork(
                graph,
                lambda: PhasedProgram(phases()),
                bandwidth=128,
                inputs=inputs,
                engine=engine,
            )
            results[engine] = network.run()
        assert_results_match(results["dense"], results["event"])
        assert results["event"].unanimous_output() == sorted(range(12))

    def test_centralised_skeleton(self):
        graph = _weighted(14, 6)
        answers = {}
        for engine in ("dense", "event"):
            answer, run = run_centralised(
                graph, lambda g: g.number_of_edges(), bandwidth=128, engine=engine
            )
            answers[engine] = (answer, run)
        assert_results_match(answers["dense"][1], answers["event"][1])
        assert answers["event"][0] == graph.number_of_edges()


class TestDefaultHintsEquivalence:
    def test_unhinted_program_runs_identically(self):
        # A program with no idleness hints: the event engine degenerates to
        # stepping every node every round and must match exactly.
        class Chatter(NodeProgram):
            def on_start(self, node):
                node.broadcast(("r", 0), bits=8)

            def on_round(self, node, round_no, inbox):
                if round_no >= 6:
                    node.halt(len(inbox))
                    return
                node.broadcast(("r", round_no), bits=8)

        graph = random_connected_graph(10, extra_edge_prob=0.2, seed=12)
        dense = run_program(graph, Chatter, bandwidth=8, engine="dense")
        event = run_program(graph, Chatter, bandwidth=8, engine="event")
        assert_results_match(dense, event)


class TestIdlenessHints:
    def test_wants_round_is_the_boolean_view_of_next_active_round(self):
        graph = nx.path_graph(3)
        network = CongestNetwork(graph, NodeProgram, bandwidth=8)
        node = network.nodes[0]

        # Default hint: every round is active.
        default = NodeProgram()
        assert default.next_active_round(node, 5) == 6
        assert all(default.wants_round(node, r) for r in (1, 2, 10))

        # A purely reactive program wants no round spontaneously.
        class Reactive(NodeProgram):
            def next_active_round(self, node, after_round):
                return None

        assert not Reactive().wants_round(node, 1)

        # A scheduled program wants exactly its scheduled rounds.
        class EveryFifth(NodeProgram):
            def next_active_round(self, node, after_round):
                return after_round + (5 - after_round % 5)

        program = EveryFifth()
        assert [r for r in range(1, 12) if program.wants_round(node, r)] == [5, 10]


class TestEventEngineSkips:
    def test_quiet_rounds_are_not_stepped(self):
        # The Elkin staged flood is mostly quiet by design: the event engine
        # must step far fewer node-rounds than the dense n x rounds grid.
        graph = _weighted(24, 11)
        _, event = run_elkin_approx_mst(graph, alpha=2.0, engine="event")
        # Re-run through the network to read the engine's step counter.
        from repro.algorithms.elkin import StagedLabelFloodProgram, quantise_weights

        classes, n_classes = quantise_weights(graph, 2.0)
        inputs = {
            node: {
                "edge_classes": {
                    repr(neighbor): classes[frozenset((node, neighbor))]
                    for neighbor in graph.neighbors(node)
                },
                "n_classes": n_classes,
                "tail": graph.number_of_nodes(),
            }
            for node in graph.nodes()
        }
        network = CongestNetwork(
            graph, StagedLabelFloodProgram, bandwidth=64, seed=0, inputs=inputs, engine="event"
        )
        result = network.run(max_rounds=200_000)
        dense_grid = result.rounds * graph.number_of_nodes()
        assert network.engine.node_steps < dense_grid / 3
