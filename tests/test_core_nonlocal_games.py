"""Tests for nonlocal games: CHSH biases and the Lemma 3.2 simulation."""

import math
import random

import pytest

np = pytest.importorskip("numpy")  # whole module is linear-algebra-bound

from repro.core.nonlocal_games import (
    AbortSimulationStrategy,
    ANDGame,
    XORGame,
    chsh_game,
    predicted_and_win_probability_one_inputs,
    predicted_xor_win_probability,
)
from tests.test_core_server_model import make_xor_exchange_protocol


class TestCHSH:
    def test_classical_bias_half(self):
        # Bell: no classical strategy beats bias 1/2 (win prob 3/4).
        assert chsh_game().classical_bias() == pytest.approx(0.5)

    def test_quantum_bias_tsirelson(self):
        # Tsirelson's bound: 1/sqrt(2) ~ 0.7071.
        bias = chsh_game().quantum_bias(seed=1)
        assert bias == pytest.approx(1.0 / math.sqrt(2.0), abs=1e-4)

    def test_quantum_beats_classical(self):
        game = chsh_game()
        assert game.quantum_bias(seed=0) > game.classical_bias() + 0.1

    def test_cost_matrix(self):
        k = chsh_game().cost_matrix
        assert k[0, 0] == pytest.approx(0.25)
        assert k[1, 1] == pytest.approx(-0.25)


class TestXORGameMachinery:
    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ValueError):
            XORGame(np.full((2, 2), 0.3), np.zeros((2, 2), dtype=int))

    def test_trivial_game_bias_one(self):
        # Constant target: answering the constant wins always.
        game = XORGame(np.full((2, 2), 0.25), np.zeros((2, 2), dtype=int))
        assert game.classical_bias() == pytest.approx(1.0)
        assert game.quantum_bias(seed=0) == pytest.approx(1.0, abs=1e-6)

    def test_quantum_at_least_classical(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            target = rng.integers(0, 2, size=(3, 3))
            game = XORGame(np.full((3, 3), 1.0 / 9.0), target)
            assert game.quantum_bias(seed=2) >= game.classical_bias() - 1e-6

    def test_strategy_bias_estimation(self):
        game = chsh_game()

        def best_classical(x, y):
            return 0, 0  # wins unless x = y = 1

        empirical = game.strategy_bias(best_classical, trials=4000, seed=0)
        assert empirical == pytest.approx(0.5, abs=0.05)


class TestLemma32Simulation:
    """The abort-based simulation of a server-model protocol."""

    def setup_method(self):
        self.protocol = make_xor_exchange_protocol(2)  # 4 total bits
        self.x = (1, 0)
        self.y = (1, 1)
        self.expected_output = self.protocol.run(self.x, self.y).output

    def test_no_abort_probability(self):
        strategy = AbortSimulationStrategy(self.protocol, mode="xor")
        assert strategy.total_guess_bits(self.x, self.y) == 4
        assert strategy.no_abort_probability(self.x, self.y) == pytest.approx(2.0**-4)

    def test_xor_win_probability_matches_lemma(self):
        strategy = AbortSimulationStrategy(self.protocol, mode="xor")
        rng = random.Random(0)
        trials = 30_000
        agree = 0
        for _ in range(trials):
            a, b = strategy.play(self.x, self.y, rng)
            agree += int((a ^ b) == self.expected_output)
        predicted = predicted_xor_win_probability(1.0, 4)
        # Lemma 3.2: P[correct] = 1/2 + (q - 1/2) * 2^{-4} with q = 1
        # (the protocol is deterministic and exact).
        assert agree / trials == pytest.approx(predicted, abs=0.01)

    def test_and_mode_one_sided(self):
        strategy = AbortSimulationStrategy(self.protocol, mode="and")
        rng = random.Random(1)
        trials = 20_000
        ones = 0
        for _ in range(trials):
            a, b = strategy.play(self.x, self.y, rng)
            ones += a & b
        if self.expected_output == 1:
            predicted = predicted_and_win_probability_one_inputs(1.0, 4)
            assert ones / trials == pytest.approx(predicted, abs=0.01)
        else:
            assert ones == 0  # 0-inputs never produce a AND b = 1

    def test_and_mode_zero_inputs_never_accept(self):
        # Pick an input whose protocol output is 0.
        protocol = make_xor_exchange_protocol(2)
        x, y = (0, 0), (0, 0)
        assert protocol.run(x, y).output == 0
        strategy = AbortSimulationStrategy(protocol, mode="and")
        rng = random.Random(2)
        for _ in range(5000):
            a, b = strategy.play(x, y, rng)
            assert (a & b) == 0


class TestANDGame:
    def test_win_probability_estimation(self):
        game = ANDGame(np.full((2, 2), 0.25), np.array([[0, 0], [0, 1]]))

        def strategy(x, y):
            return x, y  # a AND b = x AND y: always correct for this target

        assert game.win_probability(strategy, trials=2000, seed=0) == pytest.approx(1.0)
