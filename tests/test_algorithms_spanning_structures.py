"""Tests for the remaining Corollary 3.9 spanning structures."""

import random

import networkx as nx
import pytest

from repro.algorithms.spanning_structures import (
    forest_weight,
    greedy_spanner,
    min_routing_cost_tree_2approx,
    routing_cost,
    run_linear_size_spanner,
    run_min_routing_cost_tree,
    run_shallow_light_tree,
    run_shortest_st_path,
    run_steiner_forest,
    shallow_light_tree,
    spanner_max_stretch,
    steiner_forest_2approx,
)
from repro.graphs.generators import random_connected_graph


def weighted(n: int, seed: int, extra: float = 0.3) -> nx.Graph:
    graph = random_connected_graph(n, extra_edge_prob=extra, seed=seed)
    rng = random.Random(seed + 100)
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, 10.0)
    return graph


class TestShallowLightTree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_last_guarantees(self, seed):
        graph = weighted(15, seed)
        alpha = 2.0
        tree = shallow_light_tree(graph, 0, alpha=alpha)
        assert nx.is_tree(tree)
        assert set(tree.nodes()) == set(graph.nodes())
        mst_weight = sum(d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True))
        tree_weight = sum(d["weight"] for _, _, d in tree.edges(data=True))
        spt_radius = max(nx.single_source_dijkstra_path_length(graph, 0).values())
        radius = max(nx.single_source_dijkstra_path_length(tree, 0).values())
        # KRY: weight <= (1 + 2/(alpha-1)) w(MST) ... our construction's
        # guarantees, generously bounded:
        assert tree_weight <= (1 + 2 / (alpha - 1)) * mst_weight + 1e-9
        assert radius <= alpha * spt_radius + 1e-9

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            shallow_light_tree(weighted(8, 3), 0, alpha=1.0)

    def test_distributed_runner(self):
        graph = weighted(12, 4)
        summary, result = run_shallow_light_tree(graph, 0, alpha=2.0)
        assert result.halted
        assert summary["weight"] <= 3.0 * summary["mst_weight"] + 1e-9
        assert summary["radius"] <= 2.0 * summary["spt_radius"] + 1e-9


class TestRoutingCostTree:
    def test_2approx_vs_exhaustive_on_tiny(self):
        graph = weighted(6, 5, extra=0.8)
        _, approx_cost = min_routing_cost_tree_2approx(graph)
        # Exhaustive over all spanning trees of a 6-node graph.
        best = float("inf")
        edges = list(graph.edges())
        import itertools

        for subset in itertools.combinations(edges, 5):
            candidate = nx.Graph()
            candidate.add_nodes_from(graph.nodes())
            for u, v in subset:
                candidate.add_edge(u, v, weight=graph.edges[u, v]["weight"])
            if nx.is_connected(candidate) and candidate.number_of_edges() == 5:
                best = min(best, routing_cost(graph, candidate))
        assert best <= approx_cost <= 2.0 * best + 1e-9

    def test_distributed_runner(self):
        graph = weighted(10, 6)
        cost, result = run_min_routing_cost_tree(graph)
        assert cost > 0
        assert result.halted


class TestSteinerForest:
    def test_single_group_vs_mst_bound(self):
        graph = weighted(12, 7)
        terminals = [0, 3, 7, 11]
        edges = steiner_forest_2approx(graph, [terminals])
        forest = nx.Graph()
        forest.add_nodes_from(graph.nodes())
        forest.add_edges_from(tuple(e) for e in edges)
        for a in terminals[1:]:
            assert nx.has_path(forest, terminals[0], a)
        # 2-approximation versus the optimal Steiner tree (bounded below by
        # the metric-closure MST / 2).
        weight = forest_weight(graph, edges)
        assert weight > 0

    def test_multiple_groups_connected_separately(self):
        graph = weighted(14, 8)
        groups = [[0, 5], [7, 11, 13]]
        edges = steiner_forest_2approx(graph, groups)
        forest = nx.Graph()
        forest.add_nodes_from(graph.nodes())
        forest.add_edges_from(tuple(e) for e in edges)
        assert nx.has_path(forest, 0, 5)
        assert nx.has_path(forest, 7, 11)
        assert nx.has_path(forest, 7, 13)

    def test_trivial_group_ignored(self):
        graph = weighted(8, 9)
        assert steiner_forest_2approx(graph, [[3]]) == set()

    def test_distributed_runner(self):
        graph = weighted(12, 10)
        weight, result = run_steiner_forest(graph, [[0, 5, 9]])
        assert weight > 0
        assert result.halted


class TestGreedySpanner:
    @pytest.mark.parametrize("seed,k", [(0, 2), (1, 3), (2, 2)])
    def test_stretch_guarantee(self, seed, k):
        graph = weighted(20, seed, extra=0.4)
        spanner = greedy_spanner(graph, k)
        assert set(spanner.nodes()) == set(graph.nodes())
        assert nx.is_connected(spanner)
        assert spanner_max_stretch(graph, spanner) <= 2 * k - 1 + 1e-9

    def test_linear_size_at_log_k(self):
        import math

        n = 60
        graph = weighted(n, 3, extra=0.5)
        k = math.ceil(math.log2(n))
        spanner = greedy_spanner(graph, k)
        # Girth > 2k forces O(n) edges at k = ceil(log2 n); the constant
        # here is generous (the greedy spanner is usually near a tree).
        assert spanner.number_of_edges() < 2 * n
        assert spanner.number_of_edges() < graph.number_of_edges()

    def test_k1_keeps_shortest_path_metric(self):
        # Stretch 1: the spanner must preserve every pairwise distance.
        graph = weighted(10, 4, extra=0.6)
        spanner = greedy_spanner(graph, 1)
        assert spanner_max_stretch(graph, spanner) == pytest.approx(1.0)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            greedy_spanner(weighted(8, 5), 0)

    def test_distributed_runner(self):
        graph = weighted(14, 6)
        summary, result = run_linear_size_spanner(graph, 2)
        assert result.halted
        assert summary["spanner_edges"] <= summary["m"]
        assert summary["max_stretch"] <= 3.0 + 1e-9


class TestShortestSTPath:
    def test_matches_dijkstra(self):
        graph = weighted(12, 11)
        length, result = run_shortest_st_path(graph, 0, 7)
        assert length == pytest.approx(nx.dijkstra_path_length(graph, 0, 7))
        assert result.halted
