"""Tests for the network families, especially the Theorem 3.5 network."""

import math

import networkx as nx
import pytest

from repro.congest.topology import (
    boundary_nodes,
    dumbbell_graph,
    highway_positions,
    low_diameter_pair_graph,
    simulation_network,
    simulation_network_parameters,
)


class TestParameters:
    def test_normalisation(self):
        assert simulation_network_parameters(5) == (5, 2)
        assert simulation_network_parameters(9) == (9, 3)
        assert simulation_network_parameters(6) == (9, 3)  # rounded up to 2^i + 1

    def test_highway_positions(self):
        assert highway_positions(1, 9) == [1, 3, 5, 7, 9]
        assert highway_positions(3, 9) == [1, 9]

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            simulation_network_parameters(2)


class TestSimulationNetwork:
    def test_node_count_theta_gamma_l(self):
        gamma, length = 4, 17
        graph = simulation_network(gamma, length)
        n_path = gamma * length
        n_highway = sum(len(highway_positions(i, length)) for i in range(1, 5))
        assert graph.number_of_nodes() == n_path + n_highway

    def test_diameter_logarithmic(self):
        # Theorem 3.5: diameter Theta(log L) regardless of Gamma * L.
        for length in (9, 17, 33, 65):
            graph = simulation_network(3, length)
            diameter = nx.diameter(graph)
            assert diameter <= 4 * math.log2(length) + 6, (length, diameter)

    def test_paths_are_paths(self):
        graph = simulation_network(2, 9)
        for j in range(1, 9):
            assert graph.has_edge(("v", 1, j), ("v", 1, j + 1))

    def test_boundary_cliques(self):
        graph = simulation_network(3, 9)
        left = boundary_nodes(3, 9, "left")
        assert len(left) == 3 + 3  # Gamma paths + k highways
        for i in range(len(left)):
            for j in range(i + 1, len(left)):
                assert graph.has_edge(left[i], left[j])

    def test_highway_connects_to_paths(self):
        graph = simulation_network(2, 9)
        for j in (1, 3, 5, 7, 9):
            assert graph.has_edge(("h", 1, j), ("v", 1, j))
            assert graph.has_edge(("h", 1, j), ("v", 2, j))

    def test_inter_highway_links(self):
        graph = simulation_network(2, 9)
        assert graph.has_edge(("h", 2, 1), ("h", 1, 1))
        assert graph.has_edge(("h", 3, 9), ("h", 2, 9))

    def test_connected(self):
        assert nx.is_connected(simulation_network(3, 17))


class TestOtherFamilies:
    def test_dumbbell(self):
        graph = dumbbell_graph(4, 6)
        assert nx.is_connected(graph)
        dist = nx.shortest_path_length(graph, ("L", 0), ("R", 0))
        assert dist == 7

    def test_low_diameter_pair(self):
        graph = low_diameter_pair_graph(32)
        assert nx.is_connected(graph)
        assert nx.diameter(graph) <= 2 * math.log2(32) + 2


class TestAdjacencyCache:
    def test_build_adjacency_sorted_and_cached(self):
        from repro.congest.topology import build_adjacency

        graph = nx.Graph([(3, 1), (1, 2), (2, 3), (0, 3)])
        order, adjacency = build_adjacency(graph)
        assert order == tuple(sorted(graph.nodes(), key=repr))
        for node, neighbors in adjacency.items():
            assert isinstance(neighbors, tuple)
            assert list(neighbors) == sorted(graph.neighbors(node), key=repr)
        # Same graph object, same shape: the cached tuples come back.
        again = build_adjacency(graph)
        assert again[0] is order
        assert again[1] is adjacency

    def test_cache_invalidated_by_shape_change(self):
        from repro.congest.topology import build_adjacency

        graph = nx.path_graph(4)
        _, adjacency = build_adjacency(graph)
        graph.add_edge(0, 3)
        _, rebuilt = build_adjacency(graph)
        assert rebuilt is not adjacency
        assert 3 in rebuilt[0]

    def test_invalidate_adjacency_drops_the_cache(self):
        from repro.congest.topology import build_adjacency, invalidate_adjacency

        graph = nx.path_graph(4)
        _, adjacency = build_adjacency(graph)
        invalidate_adjacency(graph)
        _, rebuilt = build_adjacency(graph)
        assert rebuilt is not adjacency
        assert rebuilt == adjacency  # same graph, same content
        # Invalidating an uncached graph is a no-op, not an error.
        invalidate_adjacency(nx.path_graph(2))

    def test_paired_insert_delete_defeats_the_size_signature(self):
        # A churn round that inserts one edge and deletes another leaves
        # (n, m) unchanged, so the cache's signature CANNOT catch it -- the
        # stale adjacency comes back until the mutator invalidates
        # explicitly, which is exactly what the network's topology-event
        # application does.
        from repro.congest.topology import build_adjacency, invalidate_adjacency

        graph = nx.path_graph(4)  # edges 0-1, 1-2, 2-3
        _, adjacency = build_adjacency(graph)
        graph.add_edge(0, 3)
        graph.remove_edge(1, 2)
        stale = build_adjacency(graph)[1]
        assert stale is adjacency, "same-signature mutation must expose the stale cache"
        assert 2 in stale[1]  # wrong: the edge is gone
        invalidate_adjacency(graph)
        _, fresh = build_adjacency(graph)
        assert 2 not in fresh[1]
        assert 3 in fresh[0]

    def test_add_clique(self):
        from repro.congest.topology import add_clique

        graph = nx.Graph()
        add_clique(graph, ["a", "b", "c", "d"])
        assert graph.number_of_edges() == 6
        assert all(graph.has_edge(u, v) for u in "abcd" for v in "abcd" if u != v)
