"""Tests for the distributed MST algorithms against networkx ground truth."""

import math
import random

import networkx as nx
import pytest

from repro.algorithms.mst import (
    collect_tree_edges,
    edge_key,
    run_boruvka_mst,
    run_gkp_mst,
    tree_weight,
)
from repro.graphs.generators import random_connected_graph


def weighted_graph(n: int, seed: int, extra: float = 0.3) -> nx.Graph:
    graph = random_connected_graph(n, extra_edge_prob=extra, seed=seed)
    rng = random.Random(seed + 1)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


def reference_mst_weight(graph: nx.Graph) -> float:
    tree = nx.minimum_spanning_tree(graph, weight="weight")
    return sum(d["weight"] for _, _, d in tree.edges(data=True))


class TestEdgeKey:
    def test_symmetric(self):
        assert edge_key(3.0, "a", "b") == edge_key(3.0, "b", "a")

    def test_weight_dominates(self):
        assert edge_key(1.0, "z", "z2") < edge_key(2.0, "a", "b")


class TestBoruvka:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx(self, seed):
        graph = weighted_graph(12, seed)
        edges, result = run_boruvka_mst(graph, bandwidth=128)
        assert result.halted
        assert len(edges) == graph.number_of_nodes() - 1
        assert tree_weight(graph, edges) == pytest.approx(reference_mst_weight(graph))

    def test_on_path_graph(self):
        graph = nx.path_graph(8)
        for u, v in graph.edges():
            graph.edges[u, v]["weight"] = float(u + 1)
        edges, _ = run_boruvka_mst(graph, bandwidth=128)
        assert len(edges) == 7  # the path itself

    def test_single_fragment_label(self):
        graph = weighted_graph(10, 7)
        _, result = run_boruvka_mst(graph, bandwidth=128)
        labels = {repr(out["label"]) for out in result.outputs.values()}
        assert len(labels) == 1

    def test_tree_is_acyclic_and_spanning(self):
        graph = weighted_graph(15, 9)
        edges, _ = run_boruvka_mst(graph, bandwidth=128)
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        tree.add_edges_from(tuple(e) for e in edges)
        assert nx.is_connected(tree)
        assert tree.number_of_edges() == 14


class TestGKP:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_networkx(self, seed):
        graph = weighted_graph(14, seed)
        edges, result = run_gkp_mst(graph, bandwidth=128)
        assert result.halted
        assert len(edges) == graph.number_of_nodes() - 1
        assert tree_weight(graph, edges) == pytest.approx(reference_mst_weight(graph))

    def test_larger_instance(self):
        graph = weighted_graph(30, 11, extra=0.15)
        edges, result = run_gkp_mst(graph, bandwidth=128)
        assert tree_weight(graph, edges) == pytest.approx(reference_mst_weight(graph))

    def test_round_shape_sublinear_vs_boruvka(self):
        # The two-phase algorithm's rounds grow ~ sqrt(n) log n while
        # budget-n Boruvka grows ~ n log n: the ratio must improve with n.
        small = weighted_graph(20, 13, extra=0.2)
        large = weighted_graph(120, 13, extra=0.03)
        _, gkp_small = run_gkp_mst(small, bandwidth=128)
        _, bor_small = run_boruvka_mst(small, bandwidth=128)
        _, gkp_large = run_gkp_mst(large, bandwidth=128)
        _, bor_large = run_boruvka_mst(large, bandwidth=128)
        ratio_small = gkp_small.rounds / bor_small.rounds
        ratio_large = gkp_large.rounds / bor_large.rounds
        assert ratio_large < ratio_small

    def test_dense_graph(self):
        graph = weighted_graph(12, 17, extra=0.9)
        edges, _ = run_gkp_mst(graph, bandwidth=128)
        assert tree_weight(graph, edges) == pytest.approx(reference_mst_weight(graph))
