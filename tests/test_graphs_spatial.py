"""Spatial index property tests: the grid must equal the brute-force scan.

The generators replaced their all-pairs O(n^2) scans with
:class:`~repro.graphs.spatial.GridIndex` queries on the promise of
byte-identical output; these tests check the promise directly -- every
query result, including tie order, equals the stable
``sorted(candidates, key=(distance, rank))`` reference -- and then check
the two generator entry points end to end against their brute-force
re-implementations.
"""

import math
import random

import networkx as nx
import pytest

from repro.graphs.generators import connect_nearest_components, knn_geometric_graph
from repro.graphs.spatial import HAVE_RTREE, GridIndex, RTreeIndex, build_spatial_index


def _points(seed, n, spread=10.0):
    rng = random.Random(seed)
    return {i: (rng.random() * spread, rng.random() * spread) for i in range(n)}


def _brute_nearest(points, origin, k, exclude=(), rank=None):
    """The reference semantics: stable sort by (distance, rank)."""
    ranks = {label: i for i, label in enumerate(points)} if rank is None else rank
    excluded = {origin, *exclude}
    candidates = [
        (math.dist(points[origin], points[label]), ranks[label], label)
        for label in points
        if label not in excluded and label in ranks
    ]
    candidates.sort()
    return [label for _, _, label in candidates[:k]]


class TestGridIndexProperties:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n", [1, 2, 7, 40])
    def test_knn_equals_brute_force(self, seed, n):
        points = _points(seed, n)
        index = GridIndex(points)
        rng = random.Random(seed + 1000)
        for origin in points:
            for k in (1, 3, n):
                assert index.nearest(origin, k) == _brute_nearest(points, origin, k)
            exclude = {v for v in points if rng.random() < 0.25}
            assert index.nearest(origin, 2, exclude=exclude) == _brute_nearest(
                points, origin, 2, exclude=exclude
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_rank_map_filters_and_orders(self, seed):
        points = _points(seed, 30)
        rng = random.Random(seed + 7)
        members = [v for v in points if rng.random() < 0.4]
        rank = {v: i for i, v in enumerate(reversed(members))}
        index = GridIndex(points)
        for origin in points:
            got = index.nearest(origin, 3, rank=rank)
            assert got == _brute_nearest(points, origin, 3, rank=rank)
            assert all(v in rank for v in got)

    def test_exact_ties_follow_insertion_rank(self):
        # Four corners equidistant from the centre: order must be the
        # points' insertion order, exactly like a stable sorted() scan.
        points = {"c": (0.0, 0.0), "e": (1.0, 0.0), "n": (0.0, 1.0), "w": (-1.0, 0.0), "s": (0.0, -1.0)}
        index = GridIndex(points)
        assert index.nearest("c", 4) == ["e", "n", "w", "s"]

    def test_duplicate_coordinates(self):
        points = {0: (1.0, 1.0), 1: (1.0, 1.0), 2: (1.0, 1.0), 3: (5.0, 5.0)}
        index = GridIndex(points)
        assert index.nearest(1, 3) == [0, 2, 3]

    def test_k_larger_than_population_and_empty(self):
        points = {0: (0.0, 0.0), 1: (1.0, 0.0)}
        index = GridIndex(points)
        assert index.nearest(0, 10) == [1]
        assert index.nearest(0, 0) == []
        assert GridIndex({}).nearest_point((0.0, 0.0), 3) == []

    def test_explicit_cell_size_does_not_change_results(self):
        points = _points(3, 25)
        default = GridIndex(points)
        for cell in (0.05, 0.7, 50.0):
            sized = GridIndex(points, cell=cell)
            for origin in points:
                assert sized.nearest(origin, 4) == default.nearest(origin, 4)
        with pytest.raises(ValueError, match="cell size"):
            GridIndex(points, cell=0.0)

    def test_build_spatial_index_default_is_grid(self):
        index = build_spatial_index(_points(0, 5))
        assert isinstance(index, GridIndex)


class TestGeneratorsMatchBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", [5, 20, 60])
    def test_knn_graph_identical_to_all_pairs_scan(self, seed, n):
        rng = random.Random(seed)
        pos = {v: (rng.random() * 10, rng.random() * 10) for v in range(n)}
        k = 3
        reference = nx.Graph()
        reference.add_nodes_from(pos)
        for u in pos:
            others = [v for v in pos if v != u]
            others.sort(key=lambda v: math.dist(pos[u], pos[v]))
            for v in others[:k]:
                reference.add_edge(u, v)
        graph = knn_geometric_graph(pos, k=k)
        assert list(graph.nodes()) == list(reference.nodes())
        # Edge *insertion order and orientation*, not just the edge set:
        # downstream weight assignment iterates edges() in insertion order.
        assert list(graph.edges()) == list(reference.edges())

    @pytest.mark.parametrize("seed", range(6))
    def test_component_bridging_identical_to_brute_force(self, seed):
        rng = random.Random(seed)
        # Three clusters far apart: the kNN graph is disconnected.
        pos = {}
        for c, (cx, cy) in enumerate([(0, 0), (40, 0), (0, 40)]):
            for i in range(7):
                pos[7 * c + i] = (cx + rng.random(), cy + rng.random())
        base = knn_geometric_graph(pos, k=2)
        assert not nx.is_connected(base)

        brute = base.copy()
        while not nx.is_connected(brute):
            components = [sorted(c) for c in nx.connected_components(brute)]
            best = min(
                (math.dist(pos[a], pos[b]), a, b)
                for a in components[0]
                for comp in components[1:]
                for b in comp
            )
            brute.add_edge(best[1], best[2])

        indexed = base.copy()
        connect_nearest_components(indexed, pos)
        assert nx.is_connected(indexed)
        assert list(indexed.edges()) == list(brute.edges())


@pytest.mark.skipif(not HAVE_RTREE, reason="optional rtree package not installed")
class TestRTreeIndex:
    @pytest.mark.parametrize("seed", range(3))
    def test_rtree_matches_grid(self, seed):
        points = _points(seed, 30)
        grid = GridIndex(points)
        rtree = RTreeIndex(points)
        for origin in points:
            assert rtree.nearest(origin, 4) == grid.nearest(origin, 4)

    def test_build_spatial_index_prefers_rtree(self):
        assert isinstance(build_spatial_index(_points(0, 5), prefer="rtree"), RTreeIndex)


def test_rtree_constructor_guarded_when_absent():
    if HAVE_RTREE:
        pytest.skip("rtree installed; guard not reachable")
    with pytest.raises(RuntimeError, match="rtree"):
        RTreeIndex({0: (0.0, 0.0)})
    assert isinstance(build_spatial_index(_points(0, 5), prefer="rtree"), GridIndex)
