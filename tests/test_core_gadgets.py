"""Tests for the Section 7 gadget reductions (Theorem 3.4's engine)."""

import itertools

import networkx as nx
import pytest

from repro.core.gadgets import (
    SHIFT1,
    compose,
    gadget_permutation,
    gap_eq_mismatch_count,
    gap_eq_to_ham,
    gap_connectivity_weights,
    ham_to_spanning_tree_instance,
    ipmod3_to_ham,
    ipmod3_value,
    mst_weight_threshold,
    strand_permutation,
)
from repro.graphs.properties import is_spanning_tree


class TestPermutationLayer:
    def test_compose_order(self):
        swap01 = (1, 0, 2)
        shift = (1, 2, 0)
        assert compose(swap01, shift) == tuple(shift[swap01[j]] for j in range(3))

    def test_observation_7_1(self):
        # Gadget permutation is identity unless x_i = y_i = 1, where it is
        # the +1 cyclic shift.
        assert gadget_permutation(0, 0) == (0, 1, 2)
        assert gadget_permutation(0, 1) == (0, 1, 2)
        assert gadget_permutation(1, 0) == (0, 1, 2)
        assert gadget_permutation(1, 1) == SHIFT1

    def test_lemma_7_2(self):
        x = (1, 1, 0, 1)
        y = (1, 0, 1, 1)
        perm = strand_permutation(x, y)
        total = sum(a * b for a, b in zip(x, y)) % 3
        expected = tuple((j + total) % 3 for j in range(3))
        assert perm == expected


class TestIPmod3Reduction:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_lemma_c3_exhaustive(self, n):
        for x in itertools.product((0, 1), repeat=n):
            for y in itertools.product((0, 1), repeat=n):
                instance = ipmod3_to_ham(x, y)
                is_ham = instance.is_hamiltonian()
                # Ham iff sum x_i y_i != 0 (mod 3) iff IPmod3 outputs 0.
                assert is_ham == (ipmod3_value(x, y) == 0), (x, y)

    def test_size_linear(self):
        instance = ipmod3_to_ham((1,) * 5, (1,) * 5)
        assert instance.n_nodes == 60
        assert instance.union_graph().number_of_nodes() == 60

    def test_both_sides_perfect_matchings(self):
        instance = ipmod3_to_ham((1, 0, 1), (0, 1, 1))
        for edges in (instance.carol_edges, instance.david_edges):
            seen = set()
            for u, v in edges:
                assert u not in seen and v not in seen
                seen.update((u, v))
            assert len(seen) == instance.n_nodes

    def test_union_two_regular(self):
        instance = ipmod3_to_ham((1, 1, 0, 1), (1, 0, 1, 1))
        assert all(d == 2 for _, d in instance.union_graph().degree())

    def test_cycle_count_three_when_divisible(self):
        # sum = 3 = 0 mod 3: three strand-cycles.
        instance = ipmod3_to_ham((1, 1, 1), (1, 1, 1))
        assert instance.cycle_count() == 3

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ipmod3_to_ham((2,), (0,))
        with pytest.raises(ValueError):
            ipmod3_to_ham((0, 1), (0,))


class TestGapEqReduction:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_cycle_structure_exhaustive(self, n):
        for x in itertools.product((0, 1), repeat=n):
            for y in itertools.product((0, 1), repeat=n):
                instance = gap_eq_to_ham(x, y)
                delta = gap_eq_mismatch_count(x, y)
                cycles = instance.cycle_count()
                if delta == 0:
                    assert cycles == 1
                    assert instance.is_hamiltonian()
                else:
                    assert cycles == delta + 1
                    assert not instance.is_hamiltonian()

    def test_size_linear(self):
        instance = gap_eq_to_ham((0, 1, 0), (0, 1, 0))
        assert instance.union_graph().number_of_nodes() == 18

    def test_far_inputs_are_far(self):
        # A Gap-Eq 0-input at distance > delta yields >= delta cycles.
        x = (0, 0, 0, 0, 0, 0)
        y = (1, 1, 1, 0, 0, 0)
        instance = gap_eq_to_ham(x, y)
        assert instance.cycle_count() >= 3


class TestSection9Reductions:
    def test_ham_to_st_on_cycle(self):
        graph = nx.cycle_graph(8)
        residual = ham_to_spanning_tree_instance(graph, list(graph.edges()))
        assert residual is not None
        assert is_spanning_tree(graph, residual)

    def test_ham_to_st_rejects_wrong_degrees(self):
        graph = nx.complete_graph(5)
        assert ham_to_spanning_tree_instance(graph, [(0, 1), (1, 2)]) is None

    def test_ham_to_st_on_two_cycles(self):
        graph = nx.Graph()
        nx.add_cycle(graph, [0, 1, 2])
        nx.add_cycle(graph, [3, 4, 5])
        graph.add_edge(2, 3)
        m = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        residual = ham_to_spanning_tree_instance(graph, m)
        assert residual is not None  # degrees fine...
        assert not is_spanning_tree(graph, residual)  # ...but not a tree

    def test_gap_weights(self):
        graph = nx.complete_graph(4)
        m = [(0, 1), (1, 2), (2, 3), (3, 0)]
        weights = gap_connectivity_weights(graph, m, high_weight=100.0)
        assert weights[frozenset((0, 1))] == 1.0
        assert weights[frozenset((0, 2))] == 100.0

    def test_threshold(self):
        assert mst_weight_threshold(10, 2.0) == 18.0
