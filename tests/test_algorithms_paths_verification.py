"""Tests for shortest paths, the verification suite, Elkin approx-MST,
min cut and distributed Disjointness."""

import math
import random

import networkx as nx
import pytest

pytest.importorskip("numpy")  # the verification stack is numpy-bound

from repro.algorithms.disjointness import (
    run_classical_disjointness,
    run_quantum_disjointness,
)
from repro.algorithms.elkin import (
    component_count_mst_weight,
    quantise_weights,
    run_elkin_approx_mst,
)
from repro.algorithms.mincut import run_centralised_mincut
from repro.algorithms.paths import (
    run_bellman_ford,
    run_bfs_distances,
    shortest_path_tree_edges,
)
from repro.algorithms.verification import (
    VERIFIERS,
    run_gkp_components,
    run_le_list_verification,
    run_verification,
)
from repro.congest.topology import dumbbell_graph
from repro.graphs import properties as props
from repro.graphs.generators import disjoint_cycle_cover, random_connected_graph


def weighted(graph: nx.Graph, seed: int = 0) -> nx.Graph:
    rng = random.Random(seed)
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, 10.0)
    return graph


class TestShortestPaths:
    def test_bfs_distances_match_networkx(self):
        graph = random_connected_graph(20, seed=1)
        distances, result = run_bfs_distances(graph, 0)
        expected = nx.single_source_shortest_path_length(graph, 0)
        assert {k: int(v) for k, v in distances.items()} == dict(expected)

    def test_bellman_ford_weighted(self):
        graph = weighted(random_connected_graph(15, seed=2), seed=3)
        distances, _ = run_bellman_ford(graph, 0)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        for node, dist in expected.items():
            assert distances[node] == pytest.approx(dist)

    def test_rounds_scale_with_hop_depth(self):
        path = nx.path_graph(25)
        _, result = run_bfs_distances(path, 0)
        assert 24 <= result.rounds <= 30

    def test_tree_edges_form_spanning_tree(self):
        graph = weighted(random_connected_graph(12, seed=5), seed=6)
        _, result = run_bellman_ford(graph, 0)
        edges = shortest_path_tree_edges(result)
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        tree.add_edges_from(tuple(e) for e in edges)
        assert nx.is_connected(tree)
        assert tree.number_of_edges() == 11


class TestVerificationSuite:
    def setup_method(self):
        self.graph = random_connected_graph(14, extra_edge_prob=0.3, seed=4)
        weighted(self.graph, seed=4)

    def _check(self, problem, m_edges, expected, **kwargs):
        verdict, result = run_verification(problem, self.graph, m_edges, **kwargs)
        assert verdict == expected, f"{problem}: expected {expected}"
        assert result.halted

    def test_connectivity_positive(self):
        tree = list(nx.minimum_spanning_tree(self.graph).edges())
        self._check("connectivity", tree, True)

    def test_connectivity_negative(self):
        tree = list(nx.minimum_spanning_tree(self.graph).edges())
        self._check("connectivity", tree[:-2], False)

    def test_spanning_tree(self):
        tree = list(nx.minimum_spanning_tree(self.graph).edges())
        self._check("spanning tree", tree, True)
        cycle_edge = next(e for e in self.graph.edges() if frozenset(e) not in {frozenset(t) for t in tree})
        self._check("spanning tree", tree + [cycle_edge], False)

    def test_hamiltonian_cycle(self):
        complete = nx.complete_graph(8)
        ham = [(i, (i + 1) % 8) for i in range(8)]
        verdict, _ = run_verification("hamiltonian cycle", complete, ham)
        assert verdict is True
        two_cycles = [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4)]
        verdict, _ = run_verification("hamiltonian cycle", complete, two_cycles)
        assert verdict is False

    def test_bipartiteness(self):
        even = nx.cycle_graph(8)
        verdict, _ = run_verification("bipartiteness", even, list(even.edges()))
        assert verdict is True
        odd = nx.cycle_graph(7)
        verdict, _ = run_verification("bipartiteness", odd, list(odd.edges()))
        assert verdict is False

    def test_cycle_containment(self):
        tree = list(nx.minimum_spanning_tree(self.graph).edges())
        self._check("cycle containment", tree, False)
        extra = next(e for e in self.graph.edges() if frozenset(e) not in {frozenset(t) for t in tree})
        self._check("cycle containment", tree + [extra], True)

    def test_st_connectivity(self):
        tree = list(nx.minimum_spanning_tree(self.graph).edges())
        self._check("s-t connectivity", tree, True, s=0, t=5)
        self._check("s-t connectivity", [], False, s=0, t=5)

    def test_cut(self):
        # All edges of N form a cut (removing them disconnects N).
        self._check("cut", list(self.graph.edges()), True)
        self._check("cut", [], False)

    def test_st_cut(self):
        path = nx.path_graph(6)
        verdict, _ = run_verification("s-t cut", path, [(2, 3)], s=0, t=5)
        assert verdict is True
        verdict, _ = run_verification("s-t cut", path, [(0, 1)], s=2, t=5)
        assert verdict is False

    def test_e_cycle(self):
        cycle = nx.cycle_graph(6)
        m = list(cycle.edges())
        verdict, _ = run_verification("e-cycle containment", cycle, m, special_edge=(0, 1))
        assert verdict is True
        verdict, _ = run_verification("e-cycle containment", cycle, m[:-1], special_edge=(0, 1))
        assert verdict is False

    def test_edge_on_all_paths(self):
        path = nx.path_graph(5)
        m = list(path.edges())
        verdict, _ = run_verification("edge on all paths", path, m, s=0, t=4, special_edge=(2, 3))
        assert verdict is True
        diamond = nx.cycle_graph(4)
        verdict, _ = run_verification(
            "edge on all paths", diamond, list(diamond.edges()), s=0, t=2, special_edge=(0, 1)
        )
        assert verdict is False

    def test_simple_path(self):
        path_m = [(i, i + 1) for i in range(4)]
        complete = nx.complete_graph(8)
        verdict, _ = run_verification("simple path", complete, path_m)
        assert verdict is True
        verdict, _ = run_verification("simple path", complete, [(0, 1), (2, 3), (3, 4)])
        assert verdict is False

    def test_connected_spanning_subgraph(self):
        tree = list(nx.minimum_spanning_tree(self.graph).edges())
        self._check("connected spanning subgraph", tree, True)

    def test_all_verifiers_against_ground_truth(self):
        # Cross-validate every marks-mode verifier against the centralised
        # predicates on random subnetworks.
        rng = random.Random(0)
        checkers = {
            "connectivity": props.is_subgraph_connected,
            "connected spanning subgraph": props.is_connected_spanning_subgraph,
            "spanning tree": props.is_spanning_tree,
            "hamiltonian cycle": props.is_hamiltonian_cycle,
            "cycle containment": props.contains_cycle,
            "bipartiteness": props.is_bipartite_subgraph,
        }
        for trial in range(4):
            edges = [e for e in self.graph.edges() if rng.random() < 0.6]
            for problem, checker in checkers.items():
                expected = checker(self.graph, edges)
                verdict, _ = run_verification(problem, self.graph, edges)
                assert verdict == expected, (problem, trial)


class TestGKPComponents:
    def test_counts_components(self):
        graph = nx.complete_graph(12)
        weighted(graph, seed=8)
        cover = disjoint_cycle_cover(12, 3, seed=2)
        count, _ = run_gkp_components(graph, list(cover.edges()))
        assert count == 3

    def test_connected_input(self):
        graph = random_connected_graph(12, seed=9)
        weighted(graph, seed=9)
        tree = list(nx.minimum_spanning_tree(graph).edges())
        count, _ = run_gkp_components(graph, tree)
        assert count == 1


class TestLeastElementList:
    def test_valid_list_accepted(self):
        graph = weighted(random_connected_graph(10, seed=11), seed=11)
        ranks = {node: (node * 7) % 10 for node in graph.nodes()}
        candidate = props.least_element_list(graph, ranks, 0)
        verdict, _ = run_le_list_verification(graph, ranks, 0, candidate)
        assert verdict is True

    def test_invalid_list_rejected(self):
        graph = weighted(random_connected_graph(10, seed=12), seed=12)
        ranks = {node: node for node in graph.nodes()}
        candidate = props.least_element_list(graph, ranks, 0)[:-1] or [(0, 0.0)]
        verdict, _ = run_le_list_verification(graph, ranks, 0, candidate[:-1] + [(3, 999.0)])
        assert verdict is False


class TestElkin:
    def test_quantisation_classes(self):
        graph = weighted(random_connected_graph(10, seed=13), seed=13)
        classes, n_classes = quantise_weights(graph, alpha=2.0)
        assert n_classes >= 1
        assert all(c >= 1 for c in classes.values())

    def test_weight_within_factor(self):
        for seed in (1, 2, 3):
            graph = weighted(random_connected_graph(15, seed=seed), seed=seed)
            alpha = 2.0
            approx, _ = run_elkin_approx_mst(graph, alpha=alpha)
            exact = sum(d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True))
            assert exact - 1e-9 <= approx <= (1 + alpha) * exact + 1e-9

    def test_rounds_grow_with_class_count(self):
        graph = random_connected_graph(20, extra_edge_prob=0.2, seed=14)
        rng = random.Random(14)
        for u, v in graph.edges():
            graph.edges[u, v]["weight"] = rng.uniform(1.0, 400.0)
        _, coarse = run_elkin_approx_mst(graph, alpha=100.0)
        _, fine = run_elkin_approx_mst(graph, alpha=4.0)
        assert fine.rounds > coarse.rounds  # more classes -> more rounds

    def test_component_identity(self):
        quantised = nx.Graph()
        quantised.add_edge(0, 1, weight=1)
        quantised.add_edge(1, 2, weight=3)
        quantised.add_edge(0, 2, weight=2)
        # MST = {1, 2}: total 3.
        assert component_count_mst_weight(quantised, 3) == 3.0


class TestMinCut:
    def test_global_mincut(self):
        graph = weighted(random_connected_graph(10, extra_edge_prob=0.4, seed=15), seed=15)
        value, result = run_centralised_mincut(graph)
        expected, _ = nx.stoer_wagner(graph, weight="weight")
        assert value == pytest.approx(expected)
        assert result.halted

    def test_st_mincut(self):
        graph = weighted(random_connected_graph(10, extra_edge_prob=0.4, seed=16), seed=16)
        value, _ = run_centralised_mincut(graph, s=0, t=5)
        expected = nx.minimum_cut_value(graph, 0, 5, capacity="weight")
        assert value == pytest.approx(expected)


class TestDistributedDisjointness:
    def setup_method(self):
        self.graph = dumbbell_graph(3, 6)
        self.u = ("L", 1)
        self.v = ("R", 1)

    def test_classical_correct(self):
        rng = random.Random(0)
        for trial in range(4):
            b = 16
            x = tuple(rng.randrange(2) for _ in range(b))
            y = tuple(rng.randrange(2) for _ in range(b))
            expected = int(all(a * c == 0 for a, c in zip(x, y)))
            verdict, _ = run_classical_disjointness(self.graph, self.u, self.v, x, y)
            assert verdict == expected

    def test_classical_rounds_scale_with_b(self):
        x16 = (1,) + (0,) * 15
        _, r16 = run_classical_disjointness(self.graph, self.u, self.v, x16, x16, bandwidth=8)
        x64 = (1,) + (0,) * 63
        _, r64 = run_classical_disjointness(self.graph, self.u, self.v, x64, x64, bandwidth=8)
        assert r64.rounds > r16.rounds + 4  # pipelining: rounds ~ dist + b/B

    def test_quantum_correct_disjoint(self):
        b = 32
        x = tuple(1 if i % 2 == 0 else 0 for i in range(b))
        y = tuple(1 if i % 2 == 1 else 0 for i in range(b))
        verdict, _, queries = run_quantum_disjointness(self.graph, self.u, self.v, x, y, seed=1)
        assert verdict == 1
        assert queries <= 4 * math.isqrt(b) * 4

    def test_quantum_correct_intersecting(self):
        b = 32
        x = (1,) * b
        y = (1,) + (0,) * (b - 1)
        verdict, _, _ = run_quantum_disjointness(self.graph, self.u, self.v, x, y, seed=2)
        assert verdict == 0

    def test_quantum_rounds_track_queries_times_distance(self):
        b = 64
        x = (0,) * b
        y = (0,) * b
        verdict, result, queries = run_quantum_disjointness(self.graph, self.u, self.v, x, y, seed=3)
        assert verdict == 1
        dist = nx.shortest_path_length(self.graph, self.u, self.v)
        assert result.rounds >= queries * 2  # each query is a round trip
        assert result.rounds <= queries * 2 * dist + 4 * dist + 10
