"""Tests for the statevector simulator and gate library."""

import math
import random

import pytest

np = pytest.importorskip("numpy")  # whole module is linear-algebra-bound

from repro.quantum.gates import (
    CNOT,
    CZ,
    HADAMARD,
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    S_GATE,
    SWAP,
    T_GATE,
    controlled,
    is_unitary,
    phase,
    rotation_x,
    rotation_y,
    rotation_z,
)
from repro.quantum.state import QuantumState


class TestGates:
    def test_all_gates_unitary(self):
        for gate in (IDENTITY, PAULI_X, PAULI_Y, PAULI_Z, HADAMARD, S_GATE, T_GATE, CNOT, CZ, SWAP):
            assert is_unitary(gate)

    def test_rotations_unitary(self):
        for theta in (0.1, 1.0, math.pi):
            assert is_unitary(rotation_x(theta))
            assert is_unitary(rotation_y(theta))
            assert is_unitary(rotation_z(theta))
            assert is_unitary(phase(theta))

    def test_controlled_x_is_cnot(self):
        assert np.allclose(controlled(PAULI_X), CNOT)

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(HADAMARD @ HADAMARD, IDENTITY)


class TestQuantumState:
    def test_initial_state(self):
        state = QuantumState(2)
        assert state.amplitude([0, 0]) == pytest.approx(1.0)

    def test_from_bits(self):
        state = QuantumState.from_bits([1, 0, 1])
        assert state.amplitude([1, 0, 1]) == pytest.approx(1.0)

    def test_x_flips(self):
        state = QuantumState(1)
        state.apply(PAULI_X, [0])
        assert state.amplitude([1]) == pytest.approx(1.0)

    def test_hadamard_superposition(self):
        state = QuantumState(1)
        state.apply(HADAMARD, [0])
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)

    def test_cnot_on_nonadjacent_qubits(self):
        state = QuantumState.from_bits([1, 0, 0])
        state.apply(CNOT, [0, 2])
        assert state.amplitude([1, 0, 1]) == pytest.approx(1.0)

    def test_cnot_reversed_order(self):
        state = QuantumState.from_bits([0, 1])
        state.apply(CNOT, [1, 0])  # control is qubit 1
        assert state.amplitude([1, 1]) == pytest.approx(1.0)

    def test_swap_gate(self):
        state = QuantumState.from_bits([1, 0])
        state.apply(SWAP, [0, 1])
        assert state.amplitude([0, 1]) == pytest.approx(1.0)

    def test_bell_state_probabilities(self):
        state = QuantumState(2)
        state.apply(HADAMARD, [0])
        state.apply(CNOT, [0, 1])
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.0)

    def test_measurement_collapses(self):
        rng = random.Random(0)
        state = QuantumState(2)
        state.apply(HADAMARD, [0])
        state.apply(CNOT, [0, 1])
        a = state.measure([0], rng=rng)[0]
        b = state.measure([1], rng=rng)[0]
        assert a == b  # perfectly correlated

    def test_marginal_probabilities(self):
        state = QuantumState(2)
        state.apply(HADAMARD, [0])
        probs = state.probabilities([0])
        assert probs[0] == pytest.approx(0.5)
        probs1 = state.probabilities([1])
        assert probs1[0] == pytest.approx(1.0)

    def test_density_matrix_pure(self):
        state = QuantumState(1)
        state.apply(HADAMARD, [0])
        rho = state.density_matrix()
        assert np.trace(rho) == pytest.approx(1.0)
        assert np.trace(rho @ rho).real == pytest.approx(1.0)

    def test_reduced_density_matrix_of_bell_is_mixed(self):
        state = QuantumState(2)
        state.apply(HADAMARD, [0])
        state.apply(CNOT, [0, 1])
        rho = state.density_matrix([0])
        assert np.allclose(rho, np.eye(2) / 2)

    def test_fidelity(self):
        a = QuantumState(1)
        b = QuantumState(1)
        b.apply(PAULI_X, [0])
        assert a.fidelity(a.copy()) == pytest.approx(1.0)
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_tensor(self):
        a = QuantumState.from_bits([1])
        b = QuantumState.from_bits([0])
        joint = a.tensor(b)
        assert joint.amplitude([1, 0]) == pytest.approx(1.0)

    def test_invalid_vector_rejected(self):
        with pytest.raises(ValueError):
            QuantumState(1, np.array([1.0, 1.0]))

    def test_duplicate_qubits_rejected(self):
        state = QuantumState(2)
        with pytest.raises(ValueError):
            state.apply(CNOT, [0, 0])

    def test_zero_probability_collapse_rejected(self):
        state = QuantumState.from_bits([0])
        with pytest.raises(ValueError):
            state._collapse([0], [1])
