"""E7/E10 -- Section 6 machinery: nonlocal games, gamma_2, approximate degree,
fooling sets, and the classical two-party <-> Server-model equivalence.
"""

import math
import random

import numpy as np
from scipy.linalg import hadamard

from repro.core.approx_degree import approx_degree, mod3_function, or_function
from repro.core.fooling import gap_equality_lower_bound
from repro.core.gamma2 import gamma2_lower, spectral_norm
from repro.core.nonlocal_games import (
    AbortSimulationStrategy,
    chsh_game,
    predicted_xor_win_probability,
)
from tests.test_core_server_model import make_xor_exchange_protocol


def test_chsh_biases(benchmark):
    game = chsh_game()

    def compute():
        return game.classical_bias(), game.quantum_bias(seed=0)

    classical, quantum = benchmark.pedantic(compute, iterations=1, rounds=1)
    print("\n=== CHSH (validation of the Tsirelson/gamma_2* machinery) ===")
    print(f"classical bias: {classical:.4f}   (theory: 0.5)")
    print(f"quantum bias:   {quantum:.4f}   (theory: 1/sqrt(2) = {1/math.sqrt(2):.4f})")
    assert abs(classical - 0.5) < 1e-9
    assert abs(quantum - 1 / math.sqrt(2)) < 1e-3


def test_lemma_3_2_simulation(benchmark):
    protocol = make_xor_exchange_protocol(2)
    strategy = AbortSimulationStrategy(protocol, mode="xor")
    x, y = (1, 0), (1, 1)
    expected_output = protocol.run(x, y).output

    def empirical():
        rng = random.Random(0)
        trials = 20_000
        wins = sum(
            1
            for _ in range(trials)
            if (lambda ab: (ab[0] ^ ab[1]) == expected_output)(strategy.play(x, y, rng))
        )
        return wins / trials

    measured = benchmark.pedantic(empirical, iterations=1, rounds=1)
    predicted = predicted_xor_win_probability(1.0, strategy.total_guess_bits(x, y))
    print("\n=== Lemma 3.2: abort-based game simulation ===")
    print(f"measured win probability:  {measured:.4f}")
    print(f"predicted 1/2 + q' 4^-T:   {predicted:.4f}")
    assert abs(measured - predicted) < 0.01


def test_ipmod3_building_blocks(benchmark):
    def compute():
        ag = np.array(
            [[-1, -1, 1, 1], [-1, 1, 1, -1], [1, 1, -1, -1], [1, -1, -1, 1]], dtype=float
        )
        degrees = {n: approx_degree(mod3_function(n), eps=1 / 3) for n in (6, 9, 12, 15)}
        return spectral_norm(ag), degrees

    norm_ag, degrees = benchmark.pedantic(compute, iterations=1, rounds=1)
    print("\n=== Theorem 6.1 building blocks (Appendix B.3) ===")
    print(f"||A_g|| = {norm_ag:.4f}  (theory: 2 sqrt(2) = {2 * math.sqrt(2):.4f})")
    print(f"log2(sqrt(16)/||A_g||) = {math.log2(4 / norm_ag):.3f}  (the per-block 1/2 factor)")
    print("deg_{1/3}(MOD3_n):", degrees)
    assert abs(norm_ag - 2 * math.sqrt(2)) < 1e-9
    # Linear growth of the MOD3 approximate degree (Paturi).
    assert degrees[12] >= 2 * degrees[6] - 2
    bound = {n: d * 0.5 for n, d in degrees.items()}
    print("resulting Q*_sv(IPmod3_n) lower bounds:", {n: f"{b:.1f}" for n, b in bound.items()})


def test_or_vs_mod3_degree_separation(benchmark):
    def compute():
        return (
            {n: approx_degree(or_function(n)) for n in (4, 16, 36)},
            {n: approx_degree(mod3_function(n)) for n in (4, 16, 36)},
        )

    or_deg, mod3_deg = benchmark.pedantic(compute, iterations=1, rounds=1)
    print("\n=== Approximate degree: OR (sqrt) vs MOD3 (linear) ===")
    print(f"{'n':>4s} {'deg(OR)':>8s} {'deg(MOD3)':>10s}")
    for n in (4, 16, 36):
        print(f"{n:4d} {or_deg[n]:8d} {mod3_deg[n]:10d}")
    assert mod3_deg[36] > 2 * or_deg[36]


def test_gap_equality_bounds(benchmark):
    results = benchmark.pedantic(
        lambda: {n: gap_equality_lower_bound(n) for n in (64, 256, 1024)},
        iterations=1,
        rounds=1,
    )
    print("\n=== Theorem 6.1: Q*_sv((beta n)-Eq) via GV fooling sets ===")
    print(f"{'n':>6s} {'code size (log2)':>17s} {'lower bound':>12s}")
    for n, res in results.items():
        print(f"{n:6d} {math.log2(res['code_size_bound']):17.1f} {res['server_model_lower_bound']:12.1f}")
    bounds = [res["server_model_lower_bound"] for res in results.values()]
    assert bounds[2] > 3.5 * bounds[0]


def test_two_party_server_equivalence(benchmark):
    """Section 3.1: the classical simulation costs exactly the same bits."""
    protocol = make_xor_exchange_protocol(5)

    def run():
        from repro.core.server_model import two_party_simulation_of_server

        rng = random.Random(0)
        agreements = 0
        for _ in range(50):
            x = tuple(rng.randrange(2) for _ in range(5))
            y = tuple(rng.randrange(2) for _ in range(5))
            server = protocol.run(x, y)
            sim = two_party_simulation_of_server(protocol, x, y)
            assert sim.total_bits == server.cost
            agreements += sim.output == server.output
        return agreements

    agreements = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nSection 3.1 equivalence: {agreements}/50 outputs identical, costs equal bit-for-bit")
    assert agreements == 50


def test_hadamard_gamma2(benchmark):
    """gamma_2 of the IP/Hadamard matrix: the sqrt(n) landmark."""

    def compute():
        return {k: gamma2_lower(hadamard(2**k).astype(float)) for k in (1, 2, 3, 4, 5)}

    values = benchmark.pedantic(compute, iterations=1, rounds=1)
    print("\n=== gamma_2(H_n) = sqrt(n) ===")
    for k, value in values.items():
        print(f"n = {2**k:3d}: gamma_2 lower bound = {value:.3f} (sqrt(n) = {math.sqrt(2**k):.3f})")
        assert abs(value - math.sqrt(2**k)) < 1e-9
