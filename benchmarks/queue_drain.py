"""Benchmark the work-queue spool: drain throughput, scan cost, stealing.

Three measurement groups, all landing in one artifact (``BENCH_pr9.json``):

- **Drain throughput** (``queue-drain-1e3``, ``queue-drain-1e4``): enqueue
  N synthetic noop tickets and drain them with one in-process worker
  (inline execution, so spool mechanics dominate), once against the
  legacy flat layout (``shards=0``: one sorted directory listing per
  claim, O(spool)) and once against the sharded layout (per-shard ready
  indexes, O(batch)).  ``speedup`` = sharded tickets/sec over flat.  At
  10^4 the flat drain is *sampled* (first 1000 claims against the full
  spool) -- draining it completely is quadratic, which is the point.
- **Scan cost** (``queue-drain-scan``): full directory listings performed
  per drain, flat over sharded -- the direct measure of the ready-index
  fast path (the flat layout scans once per claim, the sharded one a
  handful of times per drain).
- **Steal effectiveness** (``queue-drain-steal``): a deliberately skewed
  spool -- one big block ticket of slow points plus a tail of small
  tickets -- drained by two worker daemons, with work stealing off and
  on.  Without stealing the worker stuck with the block rides it out
  alone; with it, the idle daemon carves off the block's unstarted
  points.  ``speedup`` = makespan(no steal) / makespan(steal).

A store-backed equivalence pass (worker shard -> ``ResultStore.merge``)
cross-checks that sharded-spool records are field-identical to a serial
run of the same sweep, modulo ``duration_s``.

Usage::

    python benchmarks/queue_drain.py --out BENCH_pr9.json
    python benchmarks/queue_drain.py --quick     # CI smoke: 10^3 only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))  # make `benchmarks.*` importable from a script run

import repro
from benchmarks.queue_scenarios import MODULE
from repro.experiments import ResultStore, expand_grid, get_scenario, run_sweep
from repro.experiments.backends.base import Task
from repro.experiments.backends.queue import WorkQueueBackend, run_worker
from repro.experiments.backends.spool import SpoolStats
from repro.experiments.store import cache_key

#: Idle period after which the draining worker concludes the spool is dry.
_IDLE = 0.3


def _tasks(scenario_name: str, grid: dict, **task_kwargs) -> list[Task]:
    points = expand_grid(get_scenario(scenario_name), grid)
    return [
        Task(
            point=p,
            key=cache_key(p.scenario, p.params, p.seed),
            scenario_version=get_scenario(scenario_name).version,
            code_version=repro.__version__,
            scenario_modules=(MODULE,),
            **task_kwargs,
        )
        for p in points
    ]


def drain_once(n: int, shards: int | None, sample: int | None = None) -> dict:
    """Enqueue ``n`` noop tickets, drain in-process, return rate + stats.

    ``sample`` drains only that many tickets against the still-full spool
    (the 10^4 flat case, where a complete drain is quadratic).
    """
    with tempfile.TemporaryDirectory(prefix="queue-drain-") as tmp:
        qdir = Path(tmp) / "q"
        backend = WorkQueueBackend(qdir, workers=0, shards=shards)
        t0 = time.perf_counter()
        for task in _tasks("queue-drain-noop", {"i": list(range(n))}):
            backend.submit(task)
        enqueue_s = time.perf_counter() - t0
        stats = SpoolStats()
        budget = sample if sample is not None else n
        t0 = time.perf_counter()
        if sample is not None:
            # Sampled drain: claim + execute `sample` tickets by hand so
            # the timing never includes an idle-out period.
            from repro.experiments.backends.spool import ShardedSpool

            spool = ShardedSpool(backend.paths, stats=stats)
            done = 0
            while done < budget:
                claimed = spool.claim(1)
                if not claimed:
                    break
                name, _ = claimed[0]
                (backend.paths.claims / name).unlink()
                backend.paths.heartbeat(name).unlink(missing_ok=True)
                done += 1
            drain_s = time.perf_counter() - t0
        else:
            done = run_worker(
                qdir, max_idle=_IDLE, poll_interval=0.01, inline=True, stats=stats
            )
            drain_s = time.perf_counter() - t0 - _IDLE  # idle-out is not drain time
        assert done == budget, f"drained {done}/{budget}"
        return {
            "layout": "flat" if shards == 0 else "sharded",
            "tickets": n,
            "drained": done,
            "sampled": sample is not None,
            "enqueue_s": round(enqueue_s, 4),
            "drain_s": round(drain_s, 4),
            "tickets_per_s": round(done / drain_s, 1),
            "stats": stats.as_dict(),
        }


def bench_drain(n: int, sample_flat: int | None = None, repeats: int = 2) -> list[dict]:
    """The flat-vs-sharded drain pair at one spool size (best-of-N)."""
    suffix = f"1e{len(str(n)) - 1}"
    drain_once(64, shards=None)  # warmup: imports, allocator, page cache

    def best(shards: int | None, sample: int | None) -> dict:
        runs = [drain_once(n, shards=shards, sample=sample) for _ in range(repeats)]
        return max(runs, key=lambda r: r["tickets_per_s"])

    flat = best(0, sample_flat)
    sharded = best(None, None)
    drain_group = {
        "group": f"queue-drain-{suffix}",
        "tickets": n,
        "flat": flat,
        "sharded": sharded,
        "speedup": round(sharded["tickets_per_s"] / flat["tickets_per_s"], 3),
    }
    groups = [drain_group]
    if sample_flat is None:
        # Scan-cost ratio only where both sides drained the whole spool.
        groups.append(
            {
                "group": f"queue-drain-scan-{suffix}",
                "flat_full_scans": flat["stats"]["full_scans"],
                "sharded_full_scans": sharded["stats"]["full_scans"],
                "sharded_index_hits": sharded["stats"]["index_hits"],
                "speedup": round(
                    flat["stats"]["full_scans"] / max(sharded["stats"]["full_scans"], 1), 1
                ),
            }
        )
    return groups


def _worker_env() -> dict[str, str]:
    """Daemon subprocesses must import repro and this benchmark module."""
    src = Path(repro.__file__).resolve().parents[1]
    root = src.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), str(root), env.get("PYTHONPATH", "")) if p
    )
    return env


def bench_steal(block_points: int, tail: int, delay: float) -> dict:
    """Skewed-spool makespan with 2 daemons, stealing off vs on."""

    def run(steal: bool) -> float:
        with tempfile.TemporaryDirectory(prefix="queue-steal-") as tmp:
            qdir = Path(tmp) / "q"
            # One big block ticket (the skew) plus single-point tickets.
            big = WorkQueueBackend(qdir, workers=0, points_per_ticket=block_points)
            grid = {"i": list(range(block_points)), "delay": [delay]}
            for task in _tasks("queue-drain-slow", grid):
                big.submit(task)
            small = WorkQueueBackend(qdir, workers=0)
            grid = {"i": list(range(block_points, block_points + tail)), "delay": [delay]}
            for task in _tasks("queue-drain-slow", grid):
                small.submit(task)
            expected = block_points + tail
            argv = [
                sys.executable, "-m", "repro.experiments", "worker", str(qdir),
                "--max-idle", "1.0", "--poll-interval", "0.02", "--inline",
            ]
            if not steal:
                argv.append("--no-steal")
            t0 = time.perf_counter()
            procs = [subprocess.Popen(argv, env=_worker_env()) for _ in range(2)]
            landed = 0
            deadline = t0 + 120.0
            while landed < expected and time.perf_counter() < deadline:
                landed = len(big.poll()) + len(small.poll())
                # poll() pops landed results; accumulate instead.
                if landed:
                    expected -= landed
                    landed = 0
                time.sleep(0.02)
            makespan = time.perf_counter() - t0
            for proc in procs:
                proc.wait(timeout=30.0)
            assert expected == 0, f"{expected} point(s) never landed"
            return makespan

    no_steal = run(steal=False)
    with_steal = run(steal=True)
    return {
        "group": "queue-drain-steal",
        "block_points": block_points,
        "tail_tickets": tail,
        "point_delay_s": delay,
        "workers": 2,
        "no_steal_s": round(no_steal, 3),
        "steal_s": round(with_steal, 3),
        "speedup": round(no_steal / with_steal, 3),
    }


def _comparable(records) -> list[dict]:
    stripped = []
    for record in records:
        data = asdict(record)
        data.pop("duration_s")
        stripped.append(data)
    return stripped


def check_equivalence(n: int) -> dict:
    """Sharded-spool drain + shard merge vs a serial run: field-identical."""
    points = expand_grid(get_scenario("queue-drain-noop"), {"i": list(range(n))})
    with tempfile.TemporaryDirectory(prefix="queue-equiv-") as tmp:
        tmp_path = Path(tmp)
        serial_store = ResultStore(tmp_path / "serial")
        serial = run_sweep(points, store=serial_store, backend="serial")
        qdir = tmp_path / "q"
        # Submit through the backend as block tickets, drain with a
        # store-writing worker, then merge the worker's shard -- the
        # external-daemon topology, in-process.
        backend = WorkQueueBackend(qdir, workers=0, points_per_ticket=4)
        shard = ResultStore(tmp_path / "shard")
        for task in _tasks("queue-drain-noop", {"i": list(range(n))}):
            backend.submit(task)
        backend.poll()  # seal any partial block ticket
        run_worker(qdir, store=shard, max_idle=_IDLE, poll_interval=0.01, inline=True)
        merged = ResultStore(tmp_path / "merged")
        imported = merged.merge(shard.root)
        merged_records = sorted(merged.iter_records(), key=lambda r: r.key)
        serial_records = sorted(serial.records, key=lambda r: r.key)
        match = _comparable(merged_records) == _comparable(serial_records)
        return {
            "check": "merged-records-vs-serial",
            "points": n,
            "merged": int(imported),
            "records_match_serial": match,
        }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr9.json")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: 10^3 drain + small steal run"
    )
    args = parser.parse_args()

    groups = bench_drain(1000)
    if not args.quick:
        groups += bench_drain(10_000, sample_flat=1000)
    groups.append(bench_steal(*((12, 8, 0.05) if args.quick else (30, 12, 0.05))))
    equivalence = check_equivalence(100)

    for group in groups:
        print(f"{group['group']}: speedup {group['speedup']}x")
    print(f"equivalence: match={equivalence['records_match_serial']}")

    payload = {
        "benchmark": "queue_drain",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "groups": groups,
        "equivalence": equivalence,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    ok = equivalence["records_match_serial"]
    headline = next(g for g in groups if g["group"] == "queue-drain-1e3")
    return 0 if ok and headline["speedup"] >= 1.0 else 1


if __name__ == "__main__":
    sys.exit(main())
