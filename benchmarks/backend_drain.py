"""Benchmark sweep drain across execution backends and record an artifact.

Runs the same grid through the serial, process-pool and work-queue
backends, times each drain, and cross-checks that the produced records
are field-identical modulo ``duration_s`` -- the backend seam's core
invariant, measured instead of assumed.  Writes one JSON file
(``BENCH_pr3.json`` by default).

Usage::

    python benchmarks/backend_drain.py --out BENCH_pr3.json
    python benchmarks/backend_drain.py --quick --workers 2   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from repro.experiments import expand_grid, get_scenario, run_sweep


def _comparable(records) -> list[dict]:
    stripped = []
    for record in records:
        data = asdict(record)
        data.pop("duration_s")
        stripped.append(data)
    return stripped


def drain(points, backend: str, workers: int, queue_dir: str | None) -> tuple[dict, list[dict]]:
    start = time.perf_counter()
    report = run_sweep(
        points, store=None, backend=backend, workers=workers, queue_dir=queue_dir
    )
    elapsed = time.perf_counter() - start
    return (
        {
            "backend": backend,
            "workers": workers if backend != "serial" else 1,
            "points": len(points),
            "failed": report.failed,
            "seconds": elapsed,
        },
        _comparable(report.records),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pr3.json")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true", help="smaller grid for CI")
    args = parser.parse_args()

    scenario = get_scenario("spanner-skeleton")
    grid = {"n": [24, 36]} if args.quick else {"n": [30, 60, 90, 120]}
    points = expand_grid(scenario, grid)

    runs = []
    baseline = None
    with tempfile.TemporaryDirectory(prefix="backend-drain-") as spool:
        for backend in ("serial", "pool", "queue"):
            timing, records = drain(
                points,
                backend,
                args.workers,
                str(Path(spool) / backend) if backend == "queue" else None,
            )
            if baseline is None:
                baseline = records
            timing["records_match_serial"] = records == baseline
            runs.append(timing)
            print(
                f"{backend:6s}: {timing['seconds']:.2f}s for {timing['points']} point(s), "
                f"match={timing['records_match_serial']}"
            )

    payload = {
        "benchmark": "backend_drain",
        "scenario": scenario.name,
        "grid": grid,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs": runs,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    print(
        f"chart it: python -m repro.experiments report --html report-site "
        f"--bench {args.out}"
    )
    return 0 if all(r["records_match_serial"] and r["failed"] == 0 for r in runs) else 1


if __name__ == "__main__":
    sys.exit(main())
