"""Performance regression gate: compare fresh BENCH output to baselines.

CI's bench-smoke job regenerates the ``BENCH_*.json`` timing artifacts on
every run; this script compares each labelled speedup in those fresh
files against the committed ``benchmarks/baselines.json`` and fails when
a measurement regresses past its allowed fraction.

Labels follow the same convention as the report site's
``extract_speedups`` walker ("pr2-engine-speedup", "fig3-mst-tradeoff
(2 thr)", ...), so the gate, the index bar charts and the trends page all
speak about the same measurements.  Each baseline entry carries a
``policy``:

- ``hard``  -- a regression past ``max_regression`` exits non-zero
  (event-engine entries: single-core, low-variance, trustworthy in CI);
- ``warn``  -- the regression is reported but never fails the job
  (parallel-engine entries: thread speedups on a 1-core CI host are
  noise, not signal).

Usage::

    python benchmarks/check_regression.py BENCH_*.json
    python benchmarks/check_regression.py BENCH_*.json --update   # rebaseline

``--update`` rewrites ``baselines.json`` from the fresh measurements,
keeping each existing entry's policy and threshold; brand-new labels get
``warn`` when they look thread-dependent ("(N thr)") and ``hard``
otherwise.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from pathlib import Path

DEFAULT_BASELINES = Path(__file__).resolve().parent / "baselines.json"
DEFAULT_MAX_REGRESSION = 0.25


def _extract_speedups(data, context: str = "") -> list[tuple[str, float]]:
    """Mirror of ``reporting.site.extract_speedups`` (kept import-free).

    The gate must run from a bare checkout before ``pip install -e .``,
    so it re-implements the tiny walker instead of importing the package;
    ``tests/test_obs.py`` pins the two implementations together.
    """
    from numbers import Real

    found: list[tuple[str, float]] = []
    if isinstance(data, dict):
        label = str(
            data.get("scenario") or data.get("benchmark") or data.get("group") or context or "speedup"
        )
        if "threads" in data and isinstance(data["threads"], Real):
            label += f" ({int(data['threads'])} thr)"
        speedup = data.get("speedup")
        if isinstance(speedup, Real) and not isinstance(speedup, bool):
            found.append((label, float(speedup)))
        vs_event = data.get("speedup_vs_event")
        if isinstance(vs_event, Real) and not isinstance(vs_event, bool):
            found.append((label + " vs event", float(vs_event)))
        for key in sorted(data):
            if key not in ("speedup", "speedup_vs_event"):
                found.extend(_extract_speedups(data[key], context=label))
    elif isinstance(data, list):
        for item in data:
            found.extend(_extract_speedups(item, context=context))
    return found


def load_measurements(paths: list[str]) -> dict[str, float]:
    """Fresh ``{label: speedup}`` from BENCH files; min wins on duplicates.

    Taking the minimum per label is the conservative choice: a benchmark
    that reports several points under one label passes only if the worst
    of them does.
    """
    measured: dict[str, float] = {}
    for raw in paths:
        expanded = sorted(glob.glob(raw)) or [raw]
        for name in expanded:
            try:
                data = json.loads(Path(name).read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"note: skipping unreadable {name}: {exc}", file=sys.stderr)
                continue
            for label, speedup in _extract_speedups(data):
                if label not in measured or speedup < measured[label]:
                    measured[label] = speedup
    return measured


def load_baselines(path: Path) -> dict:
    """The committed baseline document (``{"schema": 1, "entries": {...}}``)."""
    return json.loads(path.read_text())


def default_policy(label: str) -> str:
    """Heuristic policy for labels without an existing entry.

    Thread-count labels come from the parallel-engine benchmark, whose
    speedups depend on CI host core count -- warn-only.  Everything else
    (event-vs-dense, backend drains) is single-threaded and gated hard.
    """
    return "warn" if "thr)" in label else "hard"


def update_baselines(path: Path, measured: dict[str, float], max_regression: float) -> None:
    """Rewrite ``baselines.json`` from fresh measurements, keeping policies."""
    try:
        previous = load_baselines(path).get("entries", {})
    except (OSError, json.JSONDecodeError):
        previous = {}
    entries = {}
    for label in sorted(measured):
        old = previous.get(label, {})
        entries[label] = {
            "speedup": round(measured[label], 4),
            "policy": old.get("policy", default_policy(label)),
            "max_regression": old.get("max_regression", max_regression),
        }
    doc = {
        "schema": 1,
        "comment": (
            "Committed perf baselines for benchmarks/check_regression.py; "
            "regenerate with --update after an intentional perf change."
        ),
        "entries": entries,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} ({len(entries)} entr{'y' if len(entries) == 1 else 'ies'})")


def check(measured: dict[str, float], baselines: dict) -> int:
    """Compare fresh measurements to baselines; return the exit code."""
    entries = baselines.get("entries", {})
    failures = warnings = 0
    for label in sorted(entries):
        entry = entries[label]
        base = float(entry["speedup"])
        allowed = float(entry.get("max_regression", DEFAULT_MAX_REGRESSION))
        policy = entry.get("policy", "hard")
        if label not in measured:
            print(f"note: '{label}' not in fresh output (baseline {base:.3f}x)")
            continue
        fresh = measured[label]
        regression = 1.0 - fresh / base if base > 0 else 0.0
        verdict = f"'{label}': baseline {base:.3f}x, fresh {fresh:.3f}x"
        if regression > allowed:
            pct = 100.0 * regression
            if policy == "hard":
                failures += 1
                print(f"FAIL {verdict} ({pct:.0f}% regression > {100 * allowed:.0f}%)")
            else:
                warnings += 1
                print(f"WARN {verdict} ({pct:.0f}% regression, warn-only entry)")
        else:
            print(f"ok   {verdict}")
    for label in sorted(set(measured) - set(entries)):
        print(f"note: new label '{label}' ({measured[label]:.3f}x); add with --update")
    print(
        f"regression gate: {failures} failure(s), {warnings} warning(s), "
        f"{len(entries)} baseline entr{'y' if len(entries) == 1 else 'ies'}"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", nargs="+", help="BENCH_*.json files (globs accepted)")
    parser.add_argument(
        "--baselines",
        default=str(DEFAULT_BASELINES),
        help="baseline JSON path (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional regression for new --update entries",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from the fresh measurements and exit",
    )
    args = parser.parse_args(argv)

    measured = load_measurements(args.bench)
    if not measured:
        print("ERROR: no speedup measurements found in the given files", file=sys.stderr)
        return 1
    baselines_path = Path(args.baselines)
    if args.update:
        update_baselines(baselines_path, measured, args.max_regression)
        return 0
    try:
        baselines = load_baselines(baselines_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"ERROR: cannot read baselines {baselines_path}: {exc}", file=sys.stderr)
        return 1
    return check(measured, baselines)


if __name__ == "__main__":
    sys.exit(main())
