"""Kernel-layer benchmark: replay recorded transport workloads per backend.

Full-run wall clock is the wrong yardstick for the kernel layer: program
logic (``on_round`` dispatch), the engine clock and the post-run analysis
are shared by every backend, so even an infinitely fast transport moves
the end-to-end ratio very little.  This benchmark isolates the layer the
PR-8 kernels live in:

1. run the real workloads once on the event engine with a *recording*
   transport, capturing the exact operation sequence the engine issued
   (``enqueue`` / ``enqueue_many`` / ``flush`` / ``deliver_round`` /
   ``skip_rounds`` / the quiescence probes) -- this sequence is
   engine-invariant, it is precisely the transport-facing workload;
2. replay the identical sequence against each backend and time it:

   - ``event``      -- the reference :class:`LinkTransport` driven as the
     event engine drives it (skips stay O(live links));
   - ``dense``      -- the same transport with every skipped stretch
     expanded into per-round ``deliver_round`` calls, i.e. what the dense
     engine's clock costs at the transport layer;
   - ``columnar-stdlib`` / ``columnar-numpy`` -- the struct-of-arrays
     transport pinned to each kernel implementation.

Every leg must reproduce byte-identical deliveries and metrics
(``engines_agree``); only wall-clock may differ.  Workloads: both MST
algorithms of the headline ``fig3-mst-tradeoff`` point and the largest
``boruvka-mst-sweep`` point.  The headline ``speedup_vs_event`` key is
columnar-with-numpy over the event-driven reference; the regression gate
reads it.

Usage::

    python benchmarks/engine_kernels.py --out BENCH_pr8.json
    python benchmarks/engine_kernels.py --quick   # smaller points for CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst
from repro.congest.columnar import ColumnarTransport
from repro.congest.engine import EventEngine
from repro.congest.kernels import NumpyKernels, StdlibKernels, numpy_available
from repro.congest.transport import LinkTransport
from repro.experiments.scenarios import _boruvka_instance, _fig3_graph

#: Acceptance bar: the numpy kernels must beat the event-driven reference
#: by this factor on the fig3 workload replay.
TARGET_SPEEDUP_VS_EVENT = 1.5


class RecordingTransport(LinkTransport):
    """Reference transport that journals every operation the engine issues."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ops: list[tuple] = []
        self._mute = False  # True while enqueue_many loops over enqueue

    def enqueue(self, sender, receiver, payload, bits, round_no):
        if not self._mute:
            self.ops.append(("enqueue", sender, receiver, payload, bits))
        super().enqueue(sender, receiver, payload, bits, round_no)

    def enqueue_many(self, sender, receivers, payload, bits, round_no):
        receivers = list(receivers)
        self.ops.append(("enqueue_many", sender, receivers, payload, bits))
        self._mute = True
        try:
            super().enqueue_many(sender, receivers, payload, bits, round_no)
        finally:
            self._mute = False

    def flush(self):
        self.ops.append(("flush",))
        super().flush()

    def deliver_round(self):
        self.ops.append(("deliver",))
        return super().deliver_round()

    def rounds_until_delivery(self):
        self.ops.append(("probe_rud",))
        return super().rounds_until_delivery()

    def skip_rounds(self, rounds):
        self.ops.append(("skip", rounds))
        return super().skip_rounds(rounds)

    def pending_traffic(self):
        self.ops.append(("probe_pt",))
        return super().pending_traffic()


class RecordingEngine(EventEngine):
    """Event engine that keeps a handle on its recording transport."""

    name = "recording-event"
    transport_class = RecordingTransport

    def build_transport(self, bandwidth, strict=False, record_messages=False):
        self.recorded = super().build_transport(bandwidth, strict, record_messages)
        return self.recorded


def replay(ops: list[tuple], transport, expand_skips: bool = False) -> list:
    """Drive ``transport`` through a recorded op sequence; returns the
    non-empty inbox dicts in delivery order (the equivalence witness).

    ``expand_skips`` turns every O(1) skipped stretch into per-round
    ``deliver_round`` calls -- the dense engine's transport-facing cost
    model -- and drops the event-clock probes the dense engine never makes.
    """
    sink = []
    # Pre-bound methods: the dispatch loop is shared overhead on every
    # leg, so keep it as thin as possible to avoid diluting the ratio.
    enqueue = transport.enqueue
    enqueue_many = transport.enqueue_many
    flush = transport.flush
    deliver_round = transport.deliver_round
    keep = sink.append
    for op in ops:
        tag = op[0]
        if tag == "enqueue":
            enqueue(op[1], op[2], op[3], op[4], 0)
        elif tag == "enqueue_many":
            enqueue_many(op[1], op[2], op[3], op[4], 0)
        elif tag == "flush":
            flush()
        elif tag == "deliver":
            inboxes = deliver_round()
            if inboxes:
                keep(inboxes)
        elif tag == "skip":
            if expand_skips:
                for _ in range(op[1]):
                    deliver_round()
            else:
                transport.skip_rounds(op[1])
        elif tag == "probe_rud":
            if not expand_skips:
                transport.rounds_until_delivery()
        elif tag == "probe_pt":
            if not expand_skips:
                transport.pending_traffic()
    return sink


def fingerprint(transport, sink: list) -> dict:
    """Everything a replay leg must reproduce exactly."""
    deliveries = [
        (repr(receiver), [(repr(m.sender), repr(m.payload), m.bits) for m in msgs])
        for inboxes in sink
        for receiver, msgs in inboxes.items()
    ]
    return {
        "total_messages": transport.total_messages,
        "total_bits": transport.total_bits,
        "rounds_accounted": len(transport.per_round_bits),
        "sum_round_bits": sum(transport.per_round_bits),
        "max_edge_bits_per_round": transport.max_edge_bits_per_round,
        "deliveries": deliveries,
    }


def capture_workloads(quick: bool) -> list[dict]:
    """Run the real workloads once under the recording engine."""
    n, aspect = (32, 256.0) if quick else (60, 32768.0)
    nb = 40 if quick else 96
    fig3 = _fig3_graph(0, n, aspect, 0.08, 17)
    boruvka = _boruvka_instance("geometric", "euclidean", nb, 0.08, 64.0, 0)

    workloads = []

    engine = RecordingEngine()
    run_elkin_approx_mst(fig3, alpha=2.0, engine=engine)
    workloads.append(
        {
            "workload": "fig3-elkin",
            "group": f"fig3-mst-tradeoff n={n} W={int(aspect)}",
            "bandwidth": 64,
            "ops": engine.recorded.ops,
        }
    )

    engine = RecordingEngine()
    run_gkp_mst(fig3, bandwidth=128, engine=engine)
    workloads.append(
        {
            "workload": "fig3-gkp",
            "group": f"fig3-mst-tradeoff n={n} W={int(aspect)}",
            "bandwidth": 128,
            "ops": engine.recorded.ops,
        }
    )

    engine = RecordingEngine()
    run_boruvka_mst(boruvka, bandwidth=128, seed=0, engine=engine)
    workloads.append(
        {
            "workload": f"boruvka-geometric-euclidean n={nb}",
            "group": f"boruvka-mst-sweep n={nb}",
            "bandwidth": 128,
            "ops": engine.recorded.ops,
        }
    )
    return workloads


def backend_legs() -> dict:
    """name -> (transport factory, expand_skips)."""
    legs = {
        "dense": (lambda bw: LinkTransport(bw), True),
        "event": (lambda bw: LinkTransport(bw), False),
        "columnar-stdlib": (lambda bw: ColumnarTransport(bw, kernels=StdlibKernels), False),
    }
    if numpy_available():
        legs["columnar-numpy"] = (
            lambda bw: ColumnarTransport(bw, kernels=NumpyKernels),
            False,
        )
    return legs


def run_benchmark(workloads: list[dict], repeats: int) -> list[dict]:
    """Interleaved best-of-``repeats`` replay timing per (workload, leg).

    Interleaving the legs inside each repetition -- rather than timing one
    leg's repetitions back to back -- spreads scheduler noise evenly, which
    matters on small shared boxes.
    """
    legs = backend_legs()
    best: dict[tuple[str, str], float] = {
        (w["workload"], leg): float("inf") for w in workloads for leg in legs
    }
    prints: dict[tuple[str, str], dict] = {}
    for _ in range(repeats):
        for leg, (factory, expand) in legs.items():
            for w in workloads:
                transport = factory(w["bandwidth"])
                start = time.perf_counter()
                sink = replay(w["ops"], transport, expand)
                elapsed = time.perf_counter() - start
                key = (w["workload"], leg)
                if elapsed < best[key]:
                    best[key] = elapsed
                if key not in prints:
                    prints[key] = fingerprint(transport, sink)

    comparisons = []
    for w in workloads:
        name = w["workload"]
        reference = prints[(name, "event")]
        agree = all(prints[(name, leg)] == reference for leg in legs)
        seconds = {leg: best[(name, leg)] for leg in legs}
        entry = {
            "workload": name,
            # ``scenario`` gives the per-workload rows their own label in
            # the report walkers (the group-total rows below own the bare
            # group label, which is what the regression gate baselines).
            "scenario": name,
            "group": w["group"],
            "bandwidth": w["bandwidth"],
            "ops": len(w["ops"]),
            "messages": reference["total_messages"],
            "rounds_accounted": reference["rounds_accounted"],
            "seconds": seconds,
            "engines_agree": agree,
        }
        if "columnar-numpy" in seconds:
            entry["speedup_vs_event"] = seconds["event"] / max(seconds["columnar-numpy"], 1e-9)
            entry["speedup_vs_dense"] = seconds["dense"] / max(seconds["columnar-numpy"], 1e-9)
        comparisons.append(entry)
    return comparisons


def summarise_groups(comparisons: list[dict]) -> list[dict]:
    """Per-group totals (the fig3 point is two traces; sum them)."""
    groups: dict[str, dict] = {}
    for entry in comparisons:
        g = groups.setdefault(
            entry["group"],
            {"group": entry["group"], "seconds": {}, "engines_agree": True},
        )
        for leg, s in entry["seconds"].items():
            g["seconds"][leg] = g["seconds"].get(leg, 0.0) + s
        g["engines_agree"] = g["engines_agree"] and entry["engines_agree"]
    for g in groups.values():
        seconds = g["seconds"]
        if "columnar-numpy" in seconds:
            g["speedup_vs_event"] = seconds["event"] / max(seconds["columnar-numpy"], 1e-9)
            g["speedup_vs_dense"] = seconds["dense"] / max(seconds["columnar-numpy"], 1e-9)
    return list(groups.values())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr8.json", help="output JSON path")
    parser.add_argument(
        "--repeats", type=int, default=15, help="interleaved timing repeats (best-of)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller grid points (CI-friendly)"
    )
    args = parser.parse_args(argv)

    workloads = capture_workloads(args.quick)
    comparisons = run_benchmark(workloads, args.repeats)
    groups = summarise_groups(comparisons)
    fig3 = next(g for g in groups if g["group"].startswith("fig3"))
    payload = {
        "benchmark": "pr8-kernel-replay",
        "unit": "replay of recorded transport op sequences (engine-invariant workload)",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "numpy": _numpy_version(),
        "quick": args.quick,
        "target_speedup_vs_event": TARGET_SPEEDUP_VS_EVENT,
        "best_speedup_vs_event": fig3.get("speedup_vs_event"),
        "met_target": (fig3.get("speedup_vs_event") or 0.0) >= TARGET_SPEEDUP_VS_EVENT,
        "engines_agree": all(c["engines_agree"] for c in comparisons),
        "groups": groups,
        "comparisons": comparisons,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    for entry in comparisons:
        seconds = ", ".join(f"{leg} {s * 1e3:.2f}ms" for leg, s in entry["seconds"].items())
        print(f"{entry['workload']}: {seconds}, agree={entry['engines_agree']}")
    for g in groups:
        if "speedup_vs_event" in g:
            print(
                f"{g['group']}: columnar-numpy {g['speedup_vs_event']:.2f}x vs event, "
                f"{g['speedup_vs_dense']:.2f}x vs dense"
            )
    print(f"wrote {args.out}")
    if not payload["engines_agree"]:
        print("ERROR: backends disagree on a replay", file=sys.stderr)
        return 1
    if payload["best_speedup_vs_event"] is None:
        print("note: numpy unavailable; vs-event target not evaluated")
    elif not payload["met_target"]:
        print(
            f"note: fig3 speedup_vs_event {payload['best_speedup_vs_event']:.2f}x "
            f"below target {TARGET_SPEEDUP_VS_EVENT}x on this host"
        )
    return 0


def _numpy_version() -> str | None:
    """The optional fast-path dependency actually in effect, or None."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


if __name__ == "__main__":
    sys.exit(main())
