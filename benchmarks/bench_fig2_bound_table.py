"""E1 -- Fig. 2: the previous-vs-new lower-bound table.

Regenerates both halves of the table at concrete parameters and prints the
rows the paper reports.  The benchmarked quantity is the full table
evaluation.
"""

from repro.core.bounds import fig2_table, optimization_lower_bound, verification_lower_bound

N = 10_000
B = 14  # ~ log2 n, the standard CONGEST bandwidth
W = 1024.0
ALPHA = 2.0


def _build_table():
    return fig2_table(N, B, aspect_ratio=W, alpha=ALPHA)


def test_fig2_table(benchmark):
    rows = benchmark(_build_table)

    print("\n=== Fig. 2: lower bounds (distributed-network half) ===")
    print(f"n = {N}, B = {B}, W = {W}, alpha = {ALPHA}")
    header = f"{'problem':38s} {'previous (rounds)':>18s} {'new, quantum (rounds)':>22s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row.problem:38s} {row.previous_value:18.1f} {row.new_value:22.1f}")

    verification = [r for r in rows if r.category == "verification"]
    optimization = [r for r in rows if r.category == "optimization"]
    assert len(verification) == 14
    assert len(optimization) == 9
    # The quantum bound equals the classical one for verification (the model
    # got stronger, the bound survived) ...
    expected = verification_lower_bound(N, B)
    assert all(abs(r.new_value - expected) < 1e-9 for r in verification)
    # ... and adds the W/alpha regime for optimization.
    expected_opt = optimization_lower_bound(N, B, W, ALPHA)
    assert all(abs(r.new_value - expected_opt) < 1e-9 for r in optimization)


def test_fig2_communication_complexity_half(benchmark):
    """The bottom half of Fig. 2: Omega(n) two-sided error quantum bounds for
    Ham/ST and Omega(n) one-sided bounds for their gap versions."""
    from repro.core.fooling import gap_equality_lower_bound

    def rows():
        out = []
        for n in (64, 128, 256, 512):
            gap = gap_equality_lower_bound(n)
            out.append((n, gap["server_model_lower_bound"]))
        return out

    result = benchmark(rows)
    print("\n=== Fig. 2 (communication-complexity half): Gap problems ===")
    print(f"{'n':>6s} {'Q*_sv lower bound':>18s} {'bound/n':>10s}")
    for n, bound in result:
        print(f"{n:6d} {bound:18.2f} {bound / n:10.4f}")
    ratios = [bound / n for n, bound in result]
    # Omega(n): the per-n ratio stabilises to a constant.
    assert max(ratios) / min(ratios) < 1.6
