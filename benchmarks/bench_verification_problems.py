"""E8 -- Theorem 3.6 / Corollary 3.7: verification upper bounds vs the bound.

Runs the distributed verification suite on live instances and lays measured
round counts against the Omega(sqrt(n / (B log n))) lower bound; also shows
the GKP-based connectivity path whose rounds grow ~ sqrt(n) polylog.
"""

import math
import random

import networkx as nx

from repro.algorithms.verification import run_gkp_components, run_verification
from repro.core.bounds import verification_lower_bound
from repro.graphs.generators import disjoint_cycle_cover, random_connected_graph

BANDWIDTH = 64


def _verification_rows():
    graph = random_connected_graph(24, extra_edge_prob=0.2, seed=3)
    rng = random.Random(3)
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, 5.0)
    tree = list(nx.minimum_spanning_tree(graph).edges())
    rows = []
    cases = [
        ("connectivity", tree, True, {}),
        ("spanning tree", tree, True, {}),
        ("cycle containment", tree, False, {}),
        ("bipartiteness", tree, True, {}),
        ("s-t connectivity", tree, True, {"s": 0, "t": 5}),
        ("cut", list(graph.edges()), True, {}),
        ("connected spanning subgraph", tree, True, {}),
    ]
    for problem, m, expected, kwargs in cases:
        verdict, result = run_verification(problem, graph, m, bandwidth=BANDWIDTH, **kwargs)
        assert verdict == expected, problem
        rows.append((problem, result.rounds, result.total_bits))
    return rows


def test_verification_suite_rounds(benchmark):
    rows = benchmark.pedantic(_verification_rows, iterations=1, rounds=1)
    n = 24
    lb = verification_lower_bound(n, BANDWIDTH)
    print(f"\n=== Corollary 3.7 verification suite (n = {n}, B = {BANDWIDTH}) ===")
    print(f"lower bound Omega(sqrt(n/(B log n))) = {lb:.2f} rounds")
    print(f"{'problem':30s} {'rounds':>7s} {'total bits':>11s}")
    for problem, rounds, bits in rows:
        print(f"{problem:30s} {rounds:7d} {bits:11d}")
        assert rounds >= lb  # upper bounds dominate the lower bound


def test_gkp_connectivity_scaling(benchmark):
    """The O~(sqrt(n) + D)-shaped connectivity verifier: rounds per sqrt(n)
    stay near-flat as n quadruples."""

    def run():
        rows = []
        for n in (16, 64, 144):
            graph = random_connected_graph(n, extra_edge_prob=max(0.02, 8 / n), seed=n)
            rng = random.Random(n)
            for u, v in graph.edges():
                graph.edges[u, v]["weight"] = rng.uniform(1.0, 5.0)
            tree = list(nx.minimum_spanning_tree(graph).edges())
            count, result = run_gkp_components(graph, tree, bandwidth=128)
            assert count == 1
            rows.append((n, result.rounds, result.rounds / (math.sqrt(n) * math.log2(n) ** 2)))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== GKP connectivity verification: rounds vs sqrt(n) log^2 n ===")
    print(f"{'n':>5s} {'rounds':>7s} {'rounds/(sqrt(n) log^2 n)':>25s}")
    for n, rounds, normalised in rows:
        print(f"{n:5d} {rounds:7d} {normalised:25.2f}")
    normalised = [r[2] for r in rows]
    assert max(normalised) / min(normalised) < 3.0  # near-flat = sqrt shape


def test_gap_hamiltonian_instances(benchmark):
    """Gap-Ham verification: Hamiltonian vs beta-n-far cycle covers."""

    def run():
        n = 18
        graph = nx.complete_graph(n)
        results = []
        for n_cycles in (1, 3):
            cover = disjoint_cycle_cover(n, n_cycles, seed=5)
            verdict, result = run_verification(
                "hamiltonian cycle", graph, list(cover.edges()), bandwidth=BANDWIDTH
            )
            results.append((n_cycles, verdict, result.rounds))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== Gap-Hamiltonian verification ===")
    for n_cycles, verdict, rounds in results:
        print(f"cycles = {n_cycles}: verdict = {verdict}, rounds = {rounds}")
    assert results[0][1] is True
    assert results[1][1] is False
