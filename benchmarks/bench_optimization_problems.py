"""E9 -- Theorem 3.8 / Corollary 3.9: optimization upper bounds vs the bound.

MST (exact and approximate), s-source distances and min cut measured on live
networks against Omega(min(W/alpha, sqrt(n)) / sqrt(B log n)).
"""

import math
import random

import networkx as nx

from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.mincut import run_centralised_mincut
from repro.algorithms.mst import run_boruvka_mst, run_gkp_mst, tree_weight
from repro.algorithms.paths import run_bellman_ford
from repro.core.bounds import optimization_lower_bound
from repro.graphs.generators import random_connected_graph

BANDWIDTH = 128
N = 36


def _instance(seed: int = 7, aspect: float = 50.0) -> nx.Graph:
    graph = random_connected_graph(N, extra_edge_prob=0.15, seed=seed)
    rng = random.Random(seed)
    for u, v in graph.edges():
        graph.edges[u, v]["weight"] = rng.uniform(1.0, aspect)
    edges = list(graph.edges())
    graph.edges[edges[0]]["weight"] = 1.0
    graph.edges[edges[-1]]["weight"] = aspect
    return graph


def test_optimization_suite(benchmark):
    def run():
        graph = _instance()
        exact_weight = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
        )
        rows = []

        edges, gkp = run_gkp_mst(graph, bandwidth=BANDWIDTH)
        assert abs(tree_weight(graph, edges) - exact_weight) < 1e-6
        rows.append(("MST (GKP exact)", gkp.rounds, tree_weight(graph, edges) / exact_weight))

        edges, boruvka = run_boruvka_mst(graph, bandwidth=BANDWIDTH)
        rows.append(("MST (Boruvka exact)", boruvka.rounds, tree_weight(graph, edges) / exact_weight))

        alpha = 2.0
        approx_weight, elkin = run_elkin_approx_mst(graph, alpha=alpha)
        rows.append((f"MST (Elkin alpha={alpha:.0f})", elkin.rounds, approx_weight / exact_weight))
        assert exact_weight - 1e-9 <= approx_weight <= (1 + alpha) * exact_weight

        distances, bf = run_bellman_ford(graph, 0)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        assert all(abs(distances[v] - d) < 1e-9 for v, d in expected.items())
        rows.append(("s-source distance (BF)", bf.rounds, 1.0))

        cut_value, mincut = run_centralised_mincut(graph, bandwidth=BANDWIDTH)
        expected_cut, _ = nx.stoer_wagner(graph, weight="weight")
        assert abs(cut_value - expected_cut) < 1e-9
        rows.append(("min cut (centralised)", mincut.rounds, 1.0))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lb = optimization_lower_bound(N, BANDWIDTH, 50.0, 1.0)
    print(f"\n=== Corollary 3.9 optimization suite (n = {N}, B = {BANDWIDTH}, W = 50) ===")
    print(f"lower bound Omega(min(W/a, sqrt(n))/sqrt(B log n)) = {lb:.2f} rounds")
    print(f"{'problem':28s} {'rounds':>7s} {'quality (vs opt)':>17s}")
    for problem, rounds, quality in rows:
        print(f"{problem:28s} {rounds:7d} {quality:17.3f}")
        assert rounds >= lb


def test_mst_round_scaling(benchmark):
    """GKP rounds normalised by sqrt(n) log^2 n stay near-flat."""

    def run():
        rows = []
        for n in (16, 64, 144):
            graph = random_connected_graph(n, extra_edge_prob=max(0.02, 8 / n), seed=n)
            rng = random.Random(n + 1)
            for u, v in graph.edges():
                graph.edges[u, v]["weight"] = rng.uniform(1.0, 10.0)
            _, result = run_gkp_mst(graph, bandwidth=BANDWIDTH)
            rows.append((n, result.rounds, result.rounds / (math.sqrt(n) * math.log2(n) ** 2)))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== GKP MST rounds vs sqrt(n) log^2 n ===")
    print(f"{'n':>5s} {'rounds':>7s} {'normalised':>11s}")
    for n, rounds, normalised in rows:
        print(f"{n:5d} {rounds:7d} {normalised:11.2f}")
    normalised = [r[2] for r in rows]
    assert max(normalised) / min(normalised) < 3.0
