"""Benchmark the dense vs event CONGEST engines and record a timing artifact.

Two measurements, written as one JSON file (``BENCH_pr2.json`` by default):

1. ``engine_comparison`` -- the largest ``fig3-mst-tradeoff`` grid point
   (W = 8192) run on both engines via the ``fig3-engine-speedup`` scenario;
   the acceptance bar is an event/dense speedup of at least 3x with both
   engines in exact agreement.
2. ``harness_smoke`` -- a tiny ``fig3-mst-tradeoff`` grid through the sweep
   runner with ``--workers 2``, timing the end-to-end harness path.

Usage::

    python benchmarks/engine_speedup.py --out BENCH_pr2.json
    python benchmarks/engine_speedup.py --quick   # smaller instance for CI
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.experiments import expand_grid, get_scenario, run_sweep


def engine_comparison(n: int, aspect_ratio: float) -> dict:
    scenario = get_scenario("fig3-engine-speedup")
    params = scenario.resolve_params({"n": n, "aspect_ratio": aspect_ratio})
    result = scenario.run(params, seed=0)
    return {
        "n": n,
        "aspect_ratio": aspect_ratio,
        "dense_seconds": result["dense_seconds"],
        "event_seconds": result["event_seconds"],
        "speedup": result["speedup"],
        "engines_agree": result["engines_agree"],
        "elkin_rounds": result["elkin_rounds"],
        "gkp_rounds": result["gkp_rounds"],
    }


def harness_smoke(workers: int) -> dict:
    scenario = get_scenario("fig3-mst-tradeoff")
    grid = {"n": [24], "aspect_ratio": [2.0, 256.0]}
    points = expand_grid(scenario, grid)
    start = time.perf_counter()
    report = run_sweep(points, store=None, workers=workers)
    elapsed = time.perf_counter() - start
    return {
        "scenario": scenario.name,
        "grid": {k: v for k, v in grid.items()},
        "workers": workers,
        "points": len(points),
        "failed": report.failed,
        "seconds": elapsed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr2.json", help="output JSON path")
    parser.add_argument("--workers", type=int, default=2, help="harness smoke pool size")
    parser.add_argument(
        "--quick", action="store_true", help="smaller grid point (CI-friendly)"
    )
    args = parser.parse_args(argv)

    n, aspect_ratio = (40, 1024.0) if args.quick else (60, 8192.0)
    comparison = engine_comparison(n, aspect_ratio)
    smoke = harness_smoke(args.workers)
    payload = {
        "benchmark": "pr2-engine-speedup",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine_comparison": comparison,
        "harness_smoke": smoke,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(
        f"largest fig3 point (n={n}, W={aspect_ratio:.0f}): "
        f"dense {comparison['dense_seconds']:.3f}s, "
        f"event {comparison['event_seconds']:.3f}s, "
        f"speedup {comparison['speedup']:.2f}x, "
        f"agree={comparison['engines_agree']}"
    )
    print(
        f"harness smoke ({smoke['points']} points, {smoke['workers']} workers): "
        f"{smoke['seconds']:.2f}s, {smoke['failed']} failed"
    )
    print(f"wrote {args.out}")
    print(
        f"chart it: python -m repro.experiments report --html report-site "
        f"--bench {args.out}"
    )
    if not comparison["engines_agree"]:
        print("ERROR: engines disagree", file=sys.stderr)
        return 1
    if smoke["failed"]:
        print("ERROR: harness smoke failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
