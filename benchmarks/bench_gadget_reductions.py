"""E4/E5 -- Figs. 4-7, 12: the Section 7 gadget reductions at scale.

Builds IPmod3 -> Ham and Gap-Eq -> Gap-Ham instances for growing n, checks
soundness/completeness on every instance, and reports construction sizes
(the reductions are linear, which is what makes Theorem 3.4 tight).
"""

import random

from repro.core.gadgets import (
    gap_eq_mismatch_count,
    gap_eq_to_ham,
    ipmod3_to_ham,
    ipmod3_value,
)


def _ipmod3_batch(n: int, trials: int, seed: int = 0):
    rng = random.Random(seed)
    checked = 0
    for _ in range(trials):
        x = tuple(rng.randrange(2) for _ in range(n))
        y = tuple(rng.randrange(2) for _ in range(n))
        instance = ipmod3_to_ham(x, y)
        assert instance.is_hamiltonian() == (ipmod3_value(x, y) == 0)
        checked += 1
    return checked, instance.n_nodes


def test_ipmod3_reduction_scale(benchmark):
    results = benchmark.pedantic(
        lambda: [(n, *_ipmod3_batch(n, trials=20, seed=n)) for n in (8, 32, 128, 512)],
        iterations=1,
        rounds=1,
    )
    print("\n=== IPmod3 -> Ham reduction (Figs. 4-6, 12) ===")
    print(f"{'n':>6s} {'instances checked':>18s} {'graph nodes':>12s} {'blowup':>7s}")
    for n, checked, nodes in results:
        print(f"{n:6d} {checked:18d} {nodes:12d} {nodes / n:7.1f}")
    assert all(nodes == 12 * n for n, _, nodes in results)


def _gap_eq_batch(n: int, trials: int, seed: int = 0):
    rng = random.Random(seed)
    for _ in range(trials):
        x = list(rng.randrange(2) for _ in range(n))
        y = list(x)
        delta = rng.randrange(0, n // 2)
        for i in rng.sample(range(n), delta):
            y[i] ^= 1
        instance = gap_eq_to_ham(x, y)
        d = gap_eq_mismatch_count(x, y)
        assert instance.is_hamiltonian() == (d == 0)
        if d > 0:
            assert instance.cycle_count() == d + 1
    return instance.n_nodes


def test_gap_eq_reduction_scale(benchmark):
    results = benchmark.pedantic(
        lambda: [(n, _gap_eq_batch(n, trials=20, seed=n)) for n in (8, 32, 128, 512)],
        iterations=1,
        rounds=1,
    )
    print("\n=== Gap-Eq -> Gap-Ham reduction (Fig. 7) ===")
    print(f"{'n':>6s} {'graph nodes':>12s} {'blowup':>7s}")
    for n, nodes in results:
        print(f"{n:6d} {nodes:12d} {nodes / n:7.1f}")
    assert all(nodes == 6 * n for n, nodes in results)


def test_far_instances_have_many_cycles(benchmark):
    """The gap structure: distance beta*n inputs give Omega(n) cycles."""

    def run():
        n = 256
        beta = 0.125
        rng = random.Random(1)
        x = [rng.randrange(2) for _ in range(n)]
        y = list(x)
        for i in rng.sample(range(n), int(2 * beta * n) + 1):
            y[i] ^= 1
        return gap_eq_to_ham(x, y).cycle_count()

    cycles = benchmark(run)
    print(f"\nfar instance cycle count (n = 256, beta = 1/8): {cycles}")
    assert cycles >= 0.125 * 256
