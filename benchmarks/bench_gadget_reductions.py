"""E4/E5 -- Figs. 4-7, 12: the Section 7 gadget reductions at scale.

Builds IPmod3 -> Ham and Gap-Eq -> Gap-Ham instances for growing n, checks
soundness/completeness on every instance, and reports construction sizes
(the reductions are linear, which is what makes Theorem 3.4 tight).

The sweep logic lives in the ``gadget-reductions`` scenario registration
(:mod:`repro.experiments.scenarios`); this file is a thin wrapper over the
registered default n grid.
"""

from repro.experiments import expand_grid, get_scenario, run_sweep


def _sweep(grid: dict | None = None):
    report = run_sweep(expand_grid(get_scenario("gadget-reductions"), grid), store=None)
    assert report.ok, [r.error for r in report.records if r.status != "ok"]
    return report.results()


def test_reduction_scale(benchmark):
    rows = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    print("\n=== Section 7 gadget reductions (Figs. 4-7, 12) ===")
    print(
        f"{'n':>6s} {'IPmod3 nodes':>13s} {'blowup':>7s} "
        f"{'Gap-Eq nodes':>13s} {'blowup':>7s}"
    )
    for r in rows:
        print(
            f"{r['n']:6d} {r['ipmod3_nodes']:13d} {r['ipmod3_blowup']:7.1f} "
            f"{r['gap_eq_nodes']:13d} {r['gap_eq_blowup']:7.1f}"
        )
    # Soundness/completeness on every checked instance.
    assert all(r["ipmod3_sound"] for r in rows)
    assert all(r["gap_eq_sound"] for r in rows)
    # Linear blowups: 12n and 6n nodes.
    assert all(r["ipmod3_nodes"] == 12 * r["n"] for r in rows)
    assert all(r["gap_eq_nodes"] == 6 * r["n"] for r in rows)


def test_far_instances_have_many_cycles(benchmark):
    """The gap structure: distance beta*n inputs give Omega(n) cycles."""
    rows = benchmark.pedantic(
        lambda: _sweep({"n": 256, "beta": 0.125, "trials": 5}), iterations=1, rounds=1
    )
    cycles = rows[0]["far_instance_cycles"]
    print(f"\nfar instance cycle count (n = 256, beta = 1/8): {cycles}")
    assert rows[0]["far_cycles_linear"]
    assert cycles >= 0.125 * 256
