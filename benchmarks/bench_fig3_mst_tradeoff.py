"""E2 -- Fig. 3: the MST time / aspect-ratio tradeoff.

Two layers:

1. the closed-form curves (lower bound vs upper bound over W, with the
   crossovers at W = alpha sqrt(n) and W = alpha n);
2. *measured* rounds: the Elkin-mode staged flood (rounds ~ W/alpha + D)
   against the exact GKP algorithm (rounds ~ sqrt(n) polylog + D) on live
   networks -- their minimum reproduces the paper's solid curve shape.
"""

import random

import networkx as nx

from repro.algorithms.elkin import run_elkin_approx_mst
from repro.algorithms.mst import run_gkp_mst
from repro.core.bounds import fig3_curve
from repro.graphs.generators import random_connected_graph

N_FORMULA = 10_000
ALPHA = 2.0
WS = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 65536.0]

N_MEASURED = 60
MEASURED_WS = [2.0, 32.0, 256.0, 1024.0, 8192.0]


def test_fig3_formula_curve(benchmark):
    curve = benchmark(lambda: fig3_curve(N_FORMULA, ALPHA, WS))
    print("\n=== Fig. 3 (closed form): T(n, W) for n = 10^4, alpha = 2 ===")
    print(f"{'W':>9s} {'lower bound':>12s} {'upper bound':>12s}")
    for point in curve:
        print(f"{point['W']:9.0f} {point['lower_bound']:12.1f} {point['upper_bound']:12.1f}")
    print(f"crossover W = alpha sqrt(n): {curve[0]['crossover_sqrt']:.0f}")
    print(f"crossover W = alpha n:       {curve[0]['crossover_linear']:.0f}")
    lower = [p["lower_bound"] for p in curve]
    assert lower == sorted(lower)
    # Saturation beyond the sqrt crossover.
    assert abs(curve[-1]["upper_bound"] - curve[-2]["upper_bound"]) < 1e-9


def _measured_tradeoff():
    rows = []
    for w in MEASURED_WS:
        graph = random_connected_graph(N_MEASURED, extra_edge_prob=0.08, seed=17)
        rng = random.Random(int(w))
        for u, v in graph.edges():
            graph.edges[u, v]["weight"] = rng.uniform(1.0, w) if w > 1 else 1.0
        edges = list(graph.edges())
        graph.edges[edges[0]]["weight"] = 1.0
        graph.edges[edges[-1]]["weight"] = float(w)

        _, elkin = run_elkin_approx_mst(graph, alpha=ALPHA)
        _, gkp = run_gkp_mst(graph, bandwidth=128)
        rows.append((w, elkin.rounds, gkp.rounds, min(elkin.rounds, gkp.rounds)))
    return rows


def test_fig3_measured_rounds(benchmark):
    rows = benchmark.pedantic(_measured_tradeoff, iterations=1, rounds=1)
    print("\n=== Fig. 3 (measured): rounds on live CONGEST networks, n = 60 ===")
    print(f"{'W':>7s} {'Elkin-mode':>11s} {'exact GKP':>10s} {'combined':>9s}")
    for w, elkin_rounds, gkp_rounds, best in rows:
        print(f"{w:7.0f} {elkin_rounds:11d} {gkp_rounds:10d} {best:9d}")
    # Elkin-mode grows with W; the exact algorithm is W-independent; for
    # small W Elkin wins, for large W the exact algorithm caps the curve.
    elkin_series = [r[1] for r in rows]
    gkp_series = [r[2] for r in rows]
    assert elkin_series[-1] > elkin_series[0]
    assert max(gkp_series) - min(gkp_series) < 0.4 * max(gkp_series)
    assert rows[0][1] < rows[0][2]  # small W: Elkin-mode faster
    assert rows[-1][1] > rows[-1][2]  # large W: exact algorithm faster
