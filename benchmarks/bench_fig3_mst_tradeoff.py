"""E2 -- Fig. 3: the MST time / aspect-ratio tradeoff.

Two layers:

1. the closed-form curves (lower bound vs upper bound over W, with the
   crossovers at W = alpha sqrt(n) and W = alpha n);
2. *measured* rounds via the experiment harness: the ``fig3-mst-tradeoff``
   scenario sweeps W, running the Elkin-mode staged flood (rounds ~
   W/alpha + D) against the exact GKP algorithm (rounds ~ sqrt(n) polylog
   + D) on live networks -- their minimum reproduces the paper's solid
   curve shape.

The sweep logic lives in :mod:`repro.experiments`; this file is a thin
wrapper that runs the registered scenario's default grid and asserts the
tradeoff shape.
"""

from repro.core.bounds import fig3_curve
from repro.experiments import expand_grid, get_scenario, run_sweep

N_FORMULA = 10_000
ALPHA = 2.0
WS = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 65536.0]


def test_fig3_formula_curve(benchmark):
    curve = benchmark(lambda: fig3_curve(N_FORMULA, ALPHA, WS))
    print("\n=== Fig. 3 (closed form): T(n, W) for n = 10^4, alpha = 2 ===")
    print(f"{'W':>9s} {'lower bound':>12s} {'upper bound':>12s}")
    for point in curve:
        print(f"{point['W']:9.0f} {point['lower_bound']:12.1f} {point['upper_bound']:12.1f}")
    print(f"crossover W = alpha sqrt(n): {curve[0]['crossover_sqrt']:.0f}")
    print(f"crossover W = alpha n:       {curve[0]['crossover_linear']:.0f}")
    lower = [p["lower_bound"] for p in curve]
    assert lower == sorted(lower)
    # Saturation beyond the sqrt crossover.
    assert abs(curve[-1]["upper_bound"] - curve[-2]["upper_bound"]) < 1e-9


def _measured_tradeoff():
    scenario = get_scenario("fig3-mst-tradeoff")
    points = expand_grid(scenario)  # the registered default W grid
    report = run_sweep(points, store=None)
    assert report.ok, [r.error for r in report.records if r.status != "ok"]
    return [
        (r["W"], r["elkin_rounds"], r["gkp_rounds"], r["combined_rounds"])
        for r in report.results()
    ]


def test_fig3_measured_rounds(benchmark):
    rows = benchmark.pedantic(_measured_tradeoff, iterations=1, rounds=1)
    print("\n=== Fig. 3 (measured): rounds on live CONGEST networks, n = 60 ===")
    print(f"{'W':>7s} {'Elkin-mode':>11s} {'exact GKP':>10s} {'combined':>9s}")
    for w, elkin_rounds, gkp_rounds, best in rows:
        print(f"{w:7.0f} {elkin_rounds:11d} {gkp_rounds:10d} {best:9d}")
    # Elkin-mode grows with W; the exact algorithm is W-independent; for
    # small W Elkin wins, for large W the exact algorithm caps the curve.
    elkin_series = [r[1] for r in rows]
    gkp_series = [r[2] for r in rows]
    assert elkin_series[-1] > elkin_series[0]
    assert max(gkp_series) - min(gkp_series) < 0.4 * max(gkp_series)
    assert rows[0][1] < rows[0][2]  # small W: Elkin-mode faster
    assert rows[-1][1] > rows[-1][2]  # large W: exact algorithm faster
