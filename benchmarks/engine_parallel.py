"""Benchmark the event vs thread-sharded parallel CONGEST engines.

Times the largest ``fig3-mst-tradeoff`` and ``spanner-skeleton`` grid
points (the homogeneous, mostly-quiet workloads the parallel engine
targets) on ``engine=event`` and ``engine=parallel`` and records one JSON
artifact (``BENCH_pr4.json`` by default).  Every run's CONGEST metrics are
cross-checked -- the engines must agree exactly; only wall-clock may
differ.

The recorded environment block matters for reading the numbers: the
parallel engine shards each round's active set across ``--threads`` OS
threads, which only buys wall-clock where the interpreter allows real
thread parallelism (a free-threaded build) and the host has the cores.
On a GIL-serialised interpreter the engine's default threshold disables
sharding outright (the shards would serialise on the interpreter lock, so
dispatch overhead is pure loss), keeping it at event-engine parity; the
artifact's ``gil_enabled``/``cpu_count`` fields say which regime was
measured, and ``met_target`` whether the >= 1.5x acceptance bar was
reached on this host.

Usage::

    python benchmarks/engine_parallel.py --out BENCH_pr4.json
    python benchmarks/engine_parallel.py --quick   # smaller points for CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.experiments import get_scenario

#: Acceptance bar: parallel must beat event by this factor on some point.
TARGET_SPEEDUP = 1.5

#: RunResult-derived fields that must be identical across engines, per
#: benchmark scenario (wall-clock and step counters legitimately differ).
_INVARIANT_FIELDS = {
    "fig3-mst-tradeoff": ("elkin_rounds", "gkp_rounds", "combined_rounds"),
    "spanner-skeleton": ("spanner_edges", "max_stretch", "rounds", "total_bits"),
}


def time_point(scenario_name: str, overrides: dict, threads: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock for event vs parallel on one point."""
    scenario = get_scenario(scenario_name)
    timings: dict[str, float] = {}
    results: dict[str, dict] = {}
    for engine in ("event", "parallel"):
        params = scenario.resolve_params(
            {**overrides, "engine": engine, "engine_threads": threads}
        )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = scenario.run(params, seed=0)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
        results[engine] = result
    fields = _INVARIANT_FIELDS[scenario_name]
    agree = all(results["event"][f] == results["parallel"][f] for f in fields)
    return {
        "scenario": scenario_name,
        "point": overrides,
        "threads": threads,
        "event_seconds": timings["event"],
        "parallel_seconds": timings["parallel"],
        "speedup": timings["event"] / max(timings["parallel"], 1e-9),
        "engines_agree": agree,
        "invariants": {f: results["event"][f] for f in fields},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr4.json", help="output JSON path")
    parser.add_argument(
        "--threads", type=int, default=4, help="parallel-engine shard threads"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per engine (best-of)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller grid points (CI-friendly)"
    )
    args = parser.parse_args(argv)

    if args.quick:
        points = [
            ("fig3-mst-tradeoff", {"n": 32, "aspect_ratio": 256.0}),
            ("spanner-skeleton", {"n": 48}),
        ]
    else:
        points = [
            ("fig3-mst-tradeoff", {"n": 60, "aspect_ratio": 8192.0}),
            ("spanner-skeleton", {"n": 120}),
        ]

    comparisons = [
        time_point(name, overrides, args.threads, args.repeats)
        for name, overrides in points
    ]
    best = max(c["speedup"] for c in comparisons)
    payload = {
        "benchmark": "pr4-parallel-engine",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
        "threads": args.threads,
        "target_speedup": TARGET_SPEEDUP,
        "best_speedup": best,
        "met_target": best >= TARGET_SPEEDUP,
        "comparisons": comparisons,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    for c in comparisons:
        print(
            f"{c['scenario']} {c['point']}: "
            f"event {c['event_seconds']:.3f}s, "
            f"parallel({args.threads}t) {c['parallel_seconds']:.3f}s, "
            f"speedup {c['speedup']:.2f}x, agree={c['engines_agree']}"
        )
    print(
        f"best speedup {best:.2f}x (target {TARGET_SPEEDUP}x, "
        f"cpus={payload['cpu_count']}, gil={payload['gil_enabled']})"
    )
    print(f"wrote {args.out}")
    print(
        f"chart it: python -m repro.experiments report --html report-site "
        f"--bench {args.out}"
    )
    if not all(c["engines_agree"] for c in comparisons):
        print("ERROR: engines disagree", file=sys.stderr)
        return 1
    if not payload["met_target"]:
        # Wall-clock parity is expected on GIL-serialised single-core hosts;
        # correctness still holds, so the artifact records the miss rather
        # than failing the run.
        print(
            "note: speedup target not met on this host "
            f"(cpus={payload['cpu_count']}, gil={payload['gil_enabled']})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
