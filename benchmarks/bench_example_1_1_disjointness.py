"""E3 -- Example 1.1: quantum communication *does* help for Disjointness.

Measures the classical pipelined protocol (rounds ~ D + b/B) against the
Grover protocol (rounds ~ 2 D sqrt(b)) on a small-diameter network, showing
the quantum advantage that breaks the classical simulation-theorem argument.
"""

import random

import networkx as nx

from repro.algorithms.disjointness import (
    run_classical_disjointness,
    run_quantum_disjointness,
)
from repro.congest.topology import dumbbell_graph

BANDWIDTH = 8


def _run_pair(b: int):
    graph = dumbbell_graph(3, 4)
    u, v = ("L", 1), ("R", 1)
    rng = random.Random(b)
    x = tuple(rng.randrange(2) for _ in range(b))
    y = tuple(0 if a else rng.randrange(2) for a in x)  # disjoint instance
    classical_verdict, classical = run_classical_disjointness(
        graph, u, v, x, y, bandwidth=BANDWIDTH
    )
    quantum_verdict, quantum, queries = run_quantum_disjointness(
        graph, u, v, x, y, bandwidth=BANDWIDTH, seed=b
    )
    assert classical_verdict == 1
    return b, classical.rounds, quantum.rounds, queries, quantum_verdict


def test_example_1_1(benchmark):
    sizes = [16, 64, 256]
    rows = benchmark.pedantic(lambda: [_run_pair(b) for b in sizes], iterations=1, rounds=1)
    print("\n=== Example 1.1: distributed Disjointness, D ~ 6, B = 8 ===")
    print(f"{'b':>5s} {'classical rounds':>17s} {'quantum rounds':>15s} {'grover queries':>15s}")
    for b, c_rounds, q_rounds, queries, _ in rows:
        print(f"{b:5d} {c_rounds:17d} {q_rounds:15d} {queries:15d}")
    # Classical rounds grow linearly in b (pipelining b bits over B = 8).
    assert rows[-1][1] > rows[0][1] * 4
    # Quantum rounds grow ~ sqrt(b): growing b 16x should grow rounds < ~8x.
    assert rows[-1][2] < rows[0][2] * 10
    # At b = 256 the quantum protocol wins outright (the paper's point).
    assert rows[-1][2] < rows[-1][1]


def test_quantum_error_rate(benchmark):
    """Grover's two-sided error stays small over random instances."""

    def run_batch():
        graph = dumbbell_graph(2, 3)
        u, v = ("L", 1), ("R", 1)
        rng = random.Random(0)
        errors = 0
        trials = 12
        for t in range(trials):
            b = 32
            x = tuple(rng.randrange(2) for _ in range(b))
            y = tuple(rng.randrange(2) for _ in range(b))
            expected = int(all(a * c == 0 for a, c in zip(x, y)))
            verdict, _, _ = run_quantum_disjointness(graph, u, v, x, y, seed=t)
            errors += verdict != expected
        return errors / trials

    error_rate = benchmark.pedantic(run_batch, iterations=1, rounds=1)
    print(f"\nquantum Disjointness empirical error rate: {error_rate:.3f}")
    assert error_rate <= 0.2
