"""Synthetic scenarios for the queue-drain benchmark.

Separate from ``queue_drain.py`` so worker daemon subprocesses can import
them by module name (``benchmarks.queue_scenarios``) -- the benchmark
script itself runs as ``__main__`` and cannot be re-imported.
"""

from __future__ import annotations

import time

from repro.experiments import ParamSpec, scenario

#: Module name shipped to workers via ``Task.scenario_modules``.
MODULE = "benchmarks.queue_scenarios"


@scenario("queue-drain-noop", params=[ParamSpec("i", int, 0)], version="1")
def _noop(*, seed, i):
    """Minimal unit of work: spool mechanics, not execution, is measured."""
    return {"i": i}


@scenario(
    "queue-drain-slow",
    params=[ParamSpec("i", int, 0), ParamSpec("delay", float, 0.05)],
    version="1",
)
def _slow(*, seed, i, delay):
    """Fixed-cost point for the steal benchmark's skewed block tickets."""
    time.sleep(delay)
    return {"i": i}
