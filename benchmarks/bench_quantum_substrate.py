"""E11 -- quantum substrate validation: teleportation, Holevo, fingerprinting,
Grover query scaling.  These are the physical facts the paper's arguments
lean on (teleportation = 2 bits/qubit, Holevo caps entanglement, Grover's
sqrt speedup)."""

import math
import random

import numpy as np

from repro.quantum.fingerprint import FingerprintEquality
from repro.quantum.grover import grover_find_any, optimal_grover_iterations
from repro.quantum.holevo import holevo_bound
from repro.quantum.state import QuantumState
from repro.quantum.teleportation import teleport


def test_teleportation_fidelity(benchmark):
    def run():
        rng = random.Random(0)
        gen = np.random.default_rng(0)
        worst = 1.0
        for _ in range(40):
            vec = gen.standard_normal(2) + 1j * gen.standard_normal(2)
            state = QuantumState(1, vec / np.linalg.norm(vec))
            received, bits = teleport(state.copy(), rng=rng)
            worst = min(worst, received.fidelity(state))
            assert len(bits) == 2
        return worst

    worst = benchmark(run)
    print(f"\nteleportation worst-case fidelity over 40 random states: {worst:.12f}")
    assert worst > 1 - 1e-9


def test_holevo_cap(benchmark):
    def run():
        gen = np.random.default_rng(1)
        worst_margin = float("inf")
        for _ in range(30):
            states = []
            for _ in range(4):
                v = gen.standard_normal(2) + 1j * gen.standard_normal(2)
                v /= np.linalg.norm(v)
                states.append(np.outer(v, v.conj()))
            chi = holevo_bound([0.25] * 4, states)
            worst_margin = min(worst_margin, 1.0 - chi)
        return worst_margin

    margin = benchmark(run)
    print(f"\nHolevo: min (1 qubit cap - chi) over random ensembles: {margin:.4f}")
    assert margin >= -1e-9


def test_fingerprint_scaling(benchmark):
    def run():
        rows = []
        for n in (16, 64, 256):
            scheme = FingerprintEquality(n, seed=0)
            rows.append((n, scheme.fingerprint_qubits))
        return rows

    rows = benchmark(run)
    print("\n=== Fingerprint Equality: qubits per fingerprint ===")
    for n, qubits in rows:
        print(f"n = {n:4d}: {qubits} qubits (log2 n = {math.log2(n):.0f})")
    # O(log n): 16x input growth adds O(1) factors of qubits.
    assert rows[-1][1] <= rows[0][1] + 6


def test_grover_query_scaling(benchmark):
    def run():
        rows = []
        for n in (64, 256, 1024):
            rng = random.Random(n)
            marked = {rng.randrange(n)}
            _, queries = grover_find_any(lambda i, m=marked: i in m, n, rng=rng)
            rows.append((n, queries, optimal_grover_iterations(n, 1)))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== Grover: measured queries vs (pi/4) sqrt(n) ===")
    print(f"{'n':>6s} {'queries':>8s} {'optimal single-run':>19s}")
    for n, queries, optimal in rows:
        print(f"{n:6d} {queries:8d} {optimal:19d}")
    # sqrt scaling: 16x items -> ~4x queries (generous factor for the
    # exponential-guessing loop's overhead).
    assert rows[-1][1] <= 10 * rows[0][1]
