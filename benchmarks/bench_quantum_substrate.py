"""E11 -- quantum substrate validation: teleportation, Holevo, fingerprinting,
Grover query scaling.  These are the physical facts the paper's arguments
lean on (teleportation = 2 bits/qubit, Holevo caps entanglement, Grover's
sqrt speedup).

The checks live in the ``quantum-substrate`` scenario registration
(:mod:`repro.experiments.scenarios`); this file is a thin wrapper running
the registered check grid through the harness.
"""

from repro.experiments import expand_grid, get_scenario, run_sweep


def _sweep(grid: dict | None = None):
    report = run_sweep(expand_grid(get_scenario("quantum-substrate"), grid), store=None)
    assert report.ok, [r.error for r in report.records if r.status != "ok"]
    return report.results()


def test_substrate_checks(benchmark):
    rows = benchmark.pedantic(lambda: _sweep({"trials": 30}), iterations=1, rounds=1)
    print("\n=== Quantum substrate checks ===")
    for r in rows:
        print(f"  {r['check']:>14s}: metric = {r['metric']}, passed = {r['passed']}")
    assert all(r["passed"] for r in rows)
    by_check = {r["check"]: r for r in rows}
    # Teleportation is exact and Holevo caps chi at one qubit.
    assert by_check["teleportation"]["metric"] > 1 - 1e-9
    assert by_check["holevo"]["metric"] >= -1e-9


def test_grover_query_scaling(benchmark):
    sizes = [64, 256, 1024]
    rows = benchmark.pedantic(
        lambda: _sweep({"check": "grover", "size": sizes}), iterations=1, rounds=1
    )
    print("\n=== Grover: measured queries vs (pi/4) sqrt(n) ===")
    print(f"{'n':>6s} {'queries':>8s} {'optimal single-run':>19s}")
    for size, r in zip(sizes, rows):
        print(f"{size:6d} {r['metric']:8d} {r['optimal_single_run']:19d}")
    # sqrt scaling: 16x items -> ~4x queries (generous factor for the
    # exponential-guessing loop's overhead).
    assert rows[-1]["metric"] <= 10 * max(1, rows[0]["metric"])
