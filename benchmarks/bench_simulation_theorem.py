"""E6 -- Figs. 8-10, 13 + Theorem 3.5: the Quantum Simulation Theorem live.

Runs a worst-case-traffic CONGEST program on N(Gamma, L) for growing L and
measures what Carol and David actually pay under the Eq. (36)-(38) ownership
schedule, against the theorem's O(B log L) per-round budget.
"""

import math

import networkx as nx

from repro.congest.node import Node, NodeProgram
from repro.core.simulation_theorem import SimulationTheoremNetwork
from repro.graphs.generators import matching_pair_for_cycles


class ChatterProgram(NodeProgram):
    """All-edges-every-round traffic for the full simulation horizon."""

    def __init__(self, horizon: int):
        self.horizon = horizon

    def on_start(self, node: Node) -> None:
        node.broadcast(("r", 0), bits=8)

    def on_round(self, node: Node, round_no: int, inbox) -> None:
        if round_no >= self.horizon:
            node.halt()
            return
        node.broadcast(("r", round_no), bits=8)


def _simulate(length: int, n_paths: int = 4, bandwidth: int = 8):
    net = SimulationTheoremNetwork(n_paths, length)
    horizon = net.schedule.valid_horizon()
    accounting = net.simulate(lambda: ChatterProgram(horizon), bandwidth=bandwidth)
    diameter = nx.diameter(net.graph)
    return net, accounting, diameter


def test_simulation_theorem_accounting(benchmark):
    lengths = [9, 17, 33, 65]
    rows = benchmark.pedantic(lambda: [_simulate(L) for L in lengths], iterations=1, rounds=1)
    print("\n=== Theorem 3.5: three-party simulation accounting (B = 8) ===")
    print(
        f"{'L':>4s} {'nodes':>6s} {'diam':>5s} {'rounds':>7s} "
        f"{'C+D bits':>9s} {'6kB bound/rnd':>14s} {'server bits':>12s}"
    )
    for net, acc, diameter in rows:
        print(
            f"{net.length:4d} {net.graph.number_of_nodes():6d} {diameter:5d} "
            f"{acc.rounds:7d} {acc.cost:9d} {acc.per_round_bound:14d} {acc.server_bits:12d}"
        )
        # The theorem's guarantees, measured:
        assert all(c <= acc.per_round_bound for c in acc.per_round_cost)
        assert acc.cost <= acc.total_bound
        # Diameter Theta(log L).
        assert diameter <= 4 * math.log2(net.length) + 6


def test_observation_8_1_at_scale(benchmark):
    """Input embedding preserves cycle structure for every cycle count."""

    def run():
        net = SimulationTheoremNetwork(13, 17)  # Gamma' = 13 + 4 = 17... even needed
        net = SimulationTheoremNetwork(12, 17)  # Gamma' = 12 + 4 = 16
        results = []
        for n_cycles in (1, 2, 3, 4):
            carol, david = matching_pair_for_cycles(net.input_graph_size, n_cycles, seed=n_cycles)
            results.append(net.check_observation_8_1(carol, david))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nObservation 8.1 checks (1..4 cycles): {results}")
    assert all(results)
