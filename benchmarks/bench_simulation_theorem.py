"""E6 -- Figs. 8-10, 13 + Theorem 3.5: the Quantum Simulation Theorem live.

Runs a worst-case-traffic CONGEST program on N(Gamma, L) for growing L and
measures what Carol and David actually pay under the Eq. (36)-(38) ownership
schedule, against the theorem's O(B log L) per-round budget.

The sweep logic lives in the ``simulation-theorem`` scenario registration
(:mod:`repro.experiments.scenarios`); this file is a thin wrapper that runs
the registered default L grid through the harness and asserts the theorem's
guarantees on the measured records.
"""

from repro.experiments import expand_grid, get_scenario, run_sweep


def _sweep(name: str, grid: dict | None = None):
    report = run_sweep(expand_grid(get_scenario(name), grid), store=None)
    assert report.ok, [r.error for r in report.records if r.status != "ok"]
    return report.results()


def test_simulation_theorem_accounting(benchmark):
    rows = benchmark.pedantic(lambda: _sweep("simulation-theorem"), iterations=1, rounds=1)
    print("\n=== Theorem 3.5: three-party simulation accounting (B = 8) ===")
    print(
        f"{'L':>4s} {'nodes':>6s} {'diam':>5s} {'rounds':>7s} "
        f"{'C+D bits':>9s} {'6kB bound/rnd':>14s} {'server bits':>12s}"
    )
    for r in rows:
        print(
            f"{r['length']:4d} {r['nodes']:6d} {r['diameter']:5d} "
            f"{r['rounds']:7d} {r['player_bits']:9d} {r['per_round_bound']:14d} "
            f"{r['server_bits']:12d}"
        )
    # The theorem's guarantees, measured at every L:
    assert all(r["within_per_round_bound"] for r in rows)
    assert all(r["within_total_bound"] for r in rows)
    # Diameter Theta(log L).
    assert all(r["diameter_logarithmic"] for r in rows)


def test_observation_8_1_at_scale(benchmark):
    """Input embedding preserves cycle structure across cycle counts."""
    # Gamma' = n_paths + n_highways must be even for perfect matchings:
    # n_paths = 12 with L = 17 gives Gamma' = 16.
    grid = {"length": 17, "n_paths": 12, "n_cycles": [1, 2, 3, 4]}
    rows = benchmark.pedantic(
        lambda: _sweep("simulation-theorem", grid), iterations=1, rounds=1
    )
    results = [r["observation_8_1"] for r in rows]
    print(f"\nObservation 8.1 checks (1..4 cycles): {results}")
    assert all(results)
