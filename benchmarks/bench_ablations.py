"""Ablation benchmarks for the design choices DESIGN.md calls out.

- GKP fragment-size cap: sweeping ``cap`` trades Phase A (flood budgets
  ~ cap) against Phase B (pipeline capacity ~ n/cap); the sqrt(n) choice
  should sit at or near the measured minimum.
- gamma_2^* restarts: the alternating Tsirelson solver's accuracy vs the
  number of random restarts (the CHSH value is the ground truth).
- Quantum Disjointness bandwidth: the advantage persists across B.
"""

import math
import random

import networkx as nx

from repro.algorithms.disjointness import run_quantum_disjointness, run_classical_disjointness
from repro.algorithms.mst import run_gkp_mst, tree_weight
from repro.congest.topology import dumbbell_graph
from repro.core.gamma2 import gamma2_dual
from repro.core.nonlocal_games import chsh_game
from repro.graphs.generators import random_connected_graph


def _weighted_graph(n: int, seed: int, extra: float) -> nx.Graph:
    graph = random_connected_graph(n, extra_edge_prob=extra, seed=seed)
    rng = random.Random(seed + 1)
    weights = rng.sample(range(1, 10 * graph.number_of_edges() + 1), graph.number_of_edges())
    for (u, v), w in zip(graph.edges(), weights):
        graph.edges[u, v]["weight"] = float(w)
    return graph


def test_gkp_cap_ablation(benchmark):
    def run():
        n = 100
        graph = _weighted_graph(n, 21, 0.04)
        reference = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(graph).edges(data=True)
        )
        rows = []
        for cap in (3, 6, 10, 20, 40):
            edges, result = run_gkp_mst(graph, bandwidth=128, cap=cap)
            assert abs(tree_weight(graph, edges) - reference) < 1e-6
            rows.append((cap, result.rounds))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== Ablation: GKP fragment cap (n = 100, sqrt(n) = 10) ===")
    print(f"{'cap':>5s} {'rounds':>7s}")
    for cap, rounds in rows:
        print(f"{cap:5d} {rounds:7d}")
    counts = [rounds for _, rounds in rows]
    # At this size the constants dominate and the curve is flat: the design
    # is robust to the cap (every setting is exactly correct, asserted in
    # the runner) and stays within a modest round band.  The sqrt(n)
    # tradeoff bites asymptotically, where Phase A budgets (~cap) and
    # Phase B capacities (~n/cap) separate.
    assert max(counts) <= 1.6 * min(counts)


def test_gamma2_dual_restart_ablation(benchmark):
    game = chsh_game()
    target = 1.0 / math.sqrt(2.0)

    def run():
        return {r: gamma2_dual(game.cost_matrix, restarts=r, seed=7) for r in (1, 2, 4, 8)}

    values = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== Ablation: gamma_2^* alternating solver restarts (CHSH) ===")
    print(f"{'restarts':>9s} {'bias':>8s} {'error':>10s}")
    for restarts, value in values.items():
        print(f"{restarts:9d} {value:8.5f} {abs(value - target):10.2e}")
    # Monotone non-decreasing in restarts (it keeps the best run).
    series = list(values.values())
    assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
    assert abs(series[-1] - target) < 1e-3


def test_disjointness_bandwidth_ablation(benchmark):
    def run():
        graph = dumbbell_graph(2, 4)
        u, v = ("L", 1), ("R", 1)
        b = 128
        rng = random.Random(5)
        x = tuple(rng.randrange(2) for _ in range(b))
        y = tuple(0 if a else rng.randrange(2) for a in x)
        rows = []
        for bandwidth in (4, 8, 16):
            _, classical = run_classical_disjointness(graph, u, v, x, y, bandwidth=bandwidth)
            _, quantum, _ = run_quantum_disjointness(graph, u, v, x, y, bandwidth=bandwidth, seed=9)
            rows.append((bandwidth, classical.rounds, quantum.rounds))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print("\n=== Ablation: Example 1.1 advantage across bandwidths (b = 128) ===")
    print(f"{'B':>4s} {'classical':>10s} {'quantum':>8s}")
    for bandwidth, c_rounds, q_rounds in rows:
        print(f"{bandwidth:4d} {c_rounds:10d} {q_rounds:8d}")
    # The quantum protocol wins at small B (classical pays b/B).
    assert rows[0][2] < rows[0][1]
