"""Ablation benchmarks for the design choices DESIGN.md calls out.

- GKP fragment-size cap: sweeping ``cap`` trades Phase A (flood budgets
  ~ cap) against Phase B (pipeline capacity ~ n/cap); the sqrt(n) choice
  should sit at or near the measured minimum.
- gamma_2^* restarts: the alternating Tsirelson solver's accuracy vs the
  number of random restarts (the CHSH value is the ground truth).
- Quantum Disjointness bandwidth: the advantage persists across B.

All three sweeps are registered scenarios in :mod:`repro.experiments`;
this file is a thin wrapper that expands their grids through the harness
and asserts the ablation conclusions.
"""

import math

from repro.experiments import expand_grid, get_scenario, run_sweep


def _sweep(name: str, grid: dict | None = None):
    report = run_sweep(expand_grid(get_scenario(name), grid), store=None)
    assert report.ok, [r.error for r in report.records if r.status != "ok"]
    return report.results()


def test_gkp_cap_ablation(benchmark):
    results = benchmark.pedantic(lambda: _sweep("gkp-cap-ablation"), iterations=1, rounds=1)
    print("\n=== Ablation: GKP fragment cap (n = 100, sqrt(n) = 10) ===")
    print(f"{'cap':>5s} {'rounds':>7s}")
    for r in results:
        print(f"{r['cap']:5d} {r['rounds']:7d}")
    # Every cap setting computes the exact MST (checked in the scenario
    # against the centralised reference).
    assert all(r["exact"] for r in results)
    counts = [r["rounds"] for r in results]
    # At this size the constants dominate and the curve is flat: the design
    # is robust to the cap and stays within a modest round band.  The
    # sqrt(n) tradeoff bites asymptotically, where Phase A budgets (~cap)
    # and Phase B capacities (~n/cap) separate.
    assert max(counts) <= 1.6 * min(counts)


def test_gamma2_dual_restart_ablation(benchmark):
    target = 1.0 / math.sqrt(2.0)
    # Fixing solver_seed across the restarts axis makes the sweep isolate
    # the restart budget (and the best-kept bias monotone in it).
    results = benchmark.pedantic(
        lambda: _sweep("chsh-gamma2", {"solver_seed": 7}), iterations=1, rounds=1
    )
    print("\n=== Ablation: gamma_2^* alternating solver restarts (CHSH) ===")
    print(f"{'restarts':>9s} {'bias':>8s} {'error':>10s}")
    for r in results:
        print(f"{r['restarts']:9d} {r['bias']:8.5f} {r['abs_error']:10.2e}")
    # Monotone non-decreasing in restarts (it keeps the best run).
    series = [r["bias"] for r in results]
    assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))
    assert all(r["bias"] > r["classical_bias"] for r in results)
    assert results[-1]["abs_error"] < 1e-3
    assert all(r["bias"] <= target + 1e-6 for r in results)


def test_disjointness_bandwidth_ablation(benchmark):
    bandwidths = [4, 8, 16]
    # instance_seed pins the (x, y) instance so only the bandwidth varies.
    grid = {
        "b": [128],
        "bandwidth": bandwidths,
        "clique_size": [2],
        "path_length": [4],
        "instance_seed": [5],
    }
    results = benchmark.pedantic(
        lambda: _sweep("example11-disjointness", grid), iterations=1, rounds=1
    )
    print("\n=== Ablation: Example 1.1 advantage across bandwidths (b = 128) ===")
    print(f"{'B':>4s} {'classical':>10s} {'quantum':>8s}")
    for bandwidth, r in zip(bandwidths, results):
        print(f"{bandwidth:4d} {r['classical_rounds']:10d} {r['quantum_rounds']:8d}")
    # The quantum protocol wins at small B (classical pays b/B).
    assert results[0]["quantum_rounds"] < results[0]["classical_rounds"]
