"""Benchmark the columnar CONGEST engine against the dense and event engines.

Times the largest ``fig3-mst-tradeoff`` and ``boruvka-mst-sweep`` grid
points on ``engine=dense``, ``engine=event`` and ``engine=columnar`` and
records one JSON artifact (``BENCH_pr7.json`` by default).  Every run's
CONGEST metrics are cross-checked -- the engines must agree exactly;
only wall-clock may differ.

The headline ``speedup`` key is columnar over the *dense reference* (the
regression gate reads it); ``speedup_vs_event`` records the columnar
margin over the event engine, which already skips quiet rounds -- that
ratio isolates what the struct-of-arrays transport layout and the
pre-sorted min-edge index buy on the rounds that do execute.

Usage::

    python benchmarks/engine_columnar.py --out BENCH_pr7.json
    python benchmarks/engine_columnar.py --quick   # smaller points for CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.experiments import get_scenario

#: Acceptance bar: columnar must beat dense by this factor on some point.
TARGET_SPEEDUP = 10.0

#: RunResult-derived fields that must be identical across engines, per
#: benchmark scenario (wall-clock and step counters legitimately differ).
_INVARIANT_FIELDS = {
    "fig3-mst-tradeoff": ("elkin_rounds", "gkp_rounds", "combined_rounds"),
    "boruvka-mst-sweep": ("tree_weight", "rounds", "total_bits", "total_messages", "exact"),
}

_ENGINES = ("dense", "event", "columnar")


def time_point(scenario_name: str, overrides: dict, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock for dense vs event vs columnar."""
    scenario = get_scenario(scenario_name)
    timings: dict[str, float] = {}
    results: dict[str, dict] = {}
    for engine in _ENGINES:
        params = scenario.resolve_params({**overrides, "engine": engine})
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = scenario.run(params, seed=0)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
        results[engine] = result
    fields = _INVARIANT_FIELDS[scenario_name]
    agree = all(
        results[engine][f] == results["dense"][f] for engine in _ENGINES[1:] for f in fields
    )
    return {
        "scenario": scenario_name,
        "point": overrides,
        "dense_seconds": timings["dense"],
        "event_seconds": timings["event"],
        "columnar_seconds": timings["columnar"],
        "speedup": timings["dense"] / max(timings["columnar"], 1e-9),
        "speedup_vs_event": timings["event"] / max(timings["columnar"], 1e-9),
        "engines_agree": agree,
        "invariants": {f: results["dense"][f] for f in fields},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pr7.json", help="output JSON path")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per engine (best-of)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller grid points (CI-friendly)"
    )
    args = parser.parse_args(argv)

    if args.quick:
        points = [
            ("fig3-mst-tradeoff", {"n": 32, "aspect_ratio": 256.0}),
            ("boruvka-mst-sweep", {"n": 40, "generator": "geometric", "weight_model": "euclidean"}),
        ]
    else:
        # The headline fig3 point pushes the W axis one step past the
        # scenario's default grid: the dense reference pays O(n) steps per
        # round and the quiet-round count grows with W, so its wall-clock
        # scales ~linearly in W while the active-set engines stay flat --
        # the gap this benchmark exists to measure.
        points = [
            ("fig3-mst-tradeoff", {"n": 60, "aspect_ratio": 32768.0}),
            ("boruvka-mst-sweep", {"n": 96, "generator": "geometric", "weight_model": "euclidean"}),
        ]

    comparisons = [
        time_point(name, overrides, args.repeats) for name, overrides in points
    ]
    best = max(c["speedup"] for c in comparisons)
    payload = {
        "benchmark": "pr7-columnar-engine",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
        "numpy": _numpy_version(),
        "target_speedup": TARGET_SPEEDUP,
        "best_speedup": best,
        "met_target": best >= TARGET_SPEEDUP,
        "comparisons": comparisons,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    for c in comparisons:
        print(
            f"{c['scenario']} {c['point']}: "
            f"dense {c['dense_seconds']:.3f}s, "
            f"event {c['event_seconds']:.3f}s, "
            f"columnar {c['columnar_seconds']:.3f}s, "
            f"speedup {c['speedup']:.2f}x vs dense "
            f"({c['speedup_vs_event']:.2f}x vs event), agree={c['engines_agree']}"
        )
    print(f"best speedup {best:.2f}x vs dense (target {TARGET_SPEEDUP}x)")
    print(f"wrote {args.out}")
    print(
        f"chart it: python -m repro.experiments report --html report-site "
        f"--bench {args.out}"
    )
    if not all(c["engines_agree"] for c in comparisons):
        print("ERROR: engines disagree", file=sys.stderr)
        return 1
    if not payload["met_target"]:
        print(
            "note: speedup target not met on this host "
            f"(cpus={payload['cpu_count']}, gil={payload['gil_enabled']})"
        )
    return 0


def _numpy_version() -> str | None:
    """The optional fast-path dependency actually in effect, or None."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


if __name__ == "__main__":
    sys.exit(main())
