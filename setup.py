"""Packaging for the ElkinKNP14 reproduction.

``pip install -e .`` makes ``import repro`` work without PYTHONPATH=src,
including in the experiment harness's process-pool workers.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version: repro.__version__ feeds the experiment
# store's cache keys, so package metadata must never drift from it.
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    Path(__file__).with_name("src").joinpath("repro", "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-elkinknp14",
    version=VERSION,
    description=(
        'Reproduction of "Can Quantum Communication Speed Up Distributed '
        'Computation?" (Elkin, Klauck, Nanongkai, Pandurangan -- PODC 2014)'
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.cli:main",
        ],
    },
)
